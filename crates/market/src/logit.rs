//! Conditional logit discrete-choice model (Section 2.2) and the
//! utility-based choice simulation of Section 5.1.1 (Fig. 5).
//!
//! Workers perceive a utility `U_i = βᵀz_i + ε_i` for each task in the
//! marketplace, with i.i.d. Gumbel noise ε; the chosen task maximizes
//! perceived utility, making choice probabilities multinomial-logit.

use ft_stats::{Gumbel, Normal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A marketplace task seen through the choice model: a deterministic
/// utility component (already multiplied by β).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChoiceTask {
    /// Deterministic utility βᵀz of this task.
    pub utility: f64,
}

/// The conditional logit model over a set of tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionalLogit {
    tasks: Vec<ChoiceTask>,
}

impl ConditionalLogit {
    pub fn new(tasks: Vec<ChoiceTask>) -> Self {
        assert!(!tasks.is_empty(), "choice model needs at least one task");
        Self { tasks }
    }

    pub fn tasks(&self) -> &[ChoiceTask] {
        &self.tasks
    }

    /// Multinomial-logit choice probability of task `i`:
    /// `exp(u_i) / Σ_j exp(u_j)` (Section 2.2), computed stably.
    pub fn choice_prob(&self, i: usize) -> f64 {
        assert!(i < self.tasks.len(), "task index out of range");
        let max_u = self
            .tasks
            .iter()
            .map(|t| t.utility)
            .fold(f64::NEG_INFINITY, f64::max);
        let z: f64 = self.tasks.iter().map(|t| (t.utility - max_u).exp()).sum();
        (self.tasks[i].utility - max_u).exp() / z
    }

    /// Sample a choice by adding Gumbel noise and taking the argmax —
    /// the generative view of the logit model.
    pub fn sample_choice<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let g = Gumbel::standard();
        let mut best = 0;
        let mut best_u = f64::NEG_INFINITY;
        for (i, t) in self.tasks.iter().enumerate() {
            let u = t.utility + g.sample(rng);
            if u > best_u {
                best_u = u;
                best = i;
            }
        }
        best
    }
}

/// Configuration of the Section 5.1.1 utility simulation:
/// 100 competing tasks with worker-perceived utilities
/// `U_i ~ N(μ_i, σ_i²)`, `μ_i ~ N(0,1)`, `σ_i ~ U[0,1]`; our task has
/// `μ_1 = c/50 − 1` and `σ_1 ~ U[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilitySimConfig {
    /// Number of tasks on the marketplace including ours.
    pub n_tasks: usize,
    /// Worker samples per price point.
    pub samples_per_price: usize,
    /// Price divisor in μ₁ = c/divisor − shift.
    pub price_divisor: f64,
    /// Price shift in μ₁ = c/divisor − shift.
    pub price_shift: f64,
}

impl Default for UtilitySimConfig {
    fn default() -> Self {
        Self {
            n_tasks: 100,
            samples_per_price: 2_000,
            price_divisor: 50.0,
            price_shift: 1.0,
        }
    }
}

/// The Section 5.1.1 utility-choice simulator. Each worker draw samples a
/// fresh marketplace: competitor mean utilities `μ_i ~ N(0,1)` observed
/// through per-task perception noise `σ_i ~ U[0,1]`, and our task's
/// perceived utility `N(c/50 − 1, σ_1²)` with `σ_1 ~ U[0,1]`.
#[derive(Debug, Clone, Copy)]
pub struct UtilitySim {
    config: UtilitySimConfig,
}

impl UtilitySim {
    pub fn new(config: UtilitySimConfig) -> Self {
        assert!(config.n_tasks >= 2, "need our task plus competitors");
        assert!(config.samples_per_price > 0, "need at least one sample");
        Self { config }
    }

    /// Estimate the acceptance probability of our task at reward `c` by
    /// repeatedly sampling all tasks' perceived utilities and counting how
    /// often ours wins. Note the scale: beating 99 competitors is rare, so
    /// `p` lives in roughly `[0, 0.05]` — exactly the regime of real
    /// marketplace acceptance probabilities.
    pub fn acceptance_at<R: Rng + ?Sized>(&self, c: f64, rng: &mut R) -> f64 {
        let our_mu = c / self.config.price_divisor - self.config.price_shift;
        let std_normal = Normal::standard();
        let n_competitors = self.config.n_tasks - 1;
        let mut wins = 0u64;
        for _ in 0..self.config.samples_per_price {
            let our_sigma = rng.gen::<f64>().max(1e-6);
            let u1 = our_mu + our_sigma * std_normal.sample(rng);
            let mut best_other = f64::NEG_INFINITY;
            for _ in 0..n_competitors {
                let mu = std_normal.sample(rng);
                let sigma = rng.gen::<f64>();
                let u = mu + sigma * std_normal.sample(rng);
                if u > best_other {
                    best_other = u;
                }
            }
            if u1 > best_other {
                wins += 1;
            }
        }
        wins as f64 / self.config.samples_per_price as f64
    }

    /// Sweep prices `0..=max_price` and return `(c, p̂(c))` pairs — the
    /// blue dots of Fig. 5.
    pub fn sweep<R: Rng + ?Sized>(
        &self,
        max_price: u32,
        step: u32,
        rng: &mut R,
    ) -> Vec<(f64, f64)> {
        assert!(step > 0, "step must be positive");
        (0..=max_price)
            .step_by(step as usize)
            .map(|c| (c as f64, self.acceptance_at(c as f64, rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_stats::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn choice_probs_sum_to_one() {
        let m = ConditionalLogit::new(vec![
            ChoiceTask { utility: 0.0 },
            ChoiceTask { utility: 1.0 },
            ChoiceTask { utility: -2.0 },
        ]);
        let total: f64 = (0..3).map(|i| m.choice_prob(i)).sum();
        assert_close(total, 1.0, 1e-12);
        assert!(m.choice_prob(1) > m.choice_prob(0));
        assert!(m.choice_prob(0) > m.choice_prob(2));
    }

    #[test]
    fn choice_probs_stable_under_large_utilities() {
        let m = ConditionalLogit::new(vec![
            ChoiceTask { utility: 1000.0 },
            ChoiceTask { utility: 999.0 },
        ]);
        let p0 = m.choice_prob(0);
        let expected = 1.0 / (1.0 + (-1.0f64).exp());
        assert_close(p0, expected, 1e-12);
    }

    #[test]
    fn sampled_choices_match_probabilities() {
        let m = ConditionalLogit::new(vec![
            ChoiceTask { utility: 0.5 },
            ChoiceTask { utility: 0.0 },
            ChoiceTask { utility: 1.5 },
        ]);
        let mut rng = seeded_rng(21);
        let trials = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..trials {
            counts[m.sample_choice(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert_close(count as f64 / trials as f64, m.choice_prob(i), 0.01);
        }
    }

    #[test]
    fn utility_sim_acceptance_increases_with_price() {
        let mut rng = seeded_rng(33);
        let cfg = UtilitySimConfig {
            samples_per_price: 30_000,
            ..Default::default()
        };
        let sim = UtilitySim::new(cfg);
        let p_low = sim.acceptance_at(0.0, &mut rng);
        let p_mid = sim.acceptance_at(50.0, &mut rng);
        let p_high = sim.acceptance_at(100.0, &mut rng);
        assert!(p_low < p_mid, "p(0)={p_low} !< p(50)={p_mid}");
        assert!(p_mid < p_high, "p(50)={p_mid} !< p(100)={p_high}");
        // At c=100, μ₁ = 1 beats the max of 99 competitors a small but
        // clearly visible fraction of the time.
        assert!(p_high > 0.005 && p_high < 0.5, "p_high={p_high}");
    }

    #[test]
    fn utility_sim_midpoint_benchmark() {
        // At μ₁ = 0 (c = 50) our fixed-mean task must beat the *max* of 99
        // competitors whose means are themselves N(0,1) draws (max ≈ 2.5),
        // so p is small — order 1e-4 to 1e-3, matching the tiny real-world
        // acceptance probabilities of Section 5.1.2.
        let mut rng = seeded_rng(35);
        let cfg = UtilitySimConfig {
            samples_per_price: 60_000,
            ..Default::default()
        };
        let sim = UtilitySim::new(cfg);
        let p = sim.acceptance_at(50.0, &mut rng);
        assert!((5e-5..5e-3).contains(&p), "p(50) = {p}");
    }

    #[test]
    fn utility_sim_sweep_shape() {
        let mut rng = seeded_rng(34);
        let cfg = UtilitySimConfig {
            samples_per_price: 500,
            ..Default::default()
        };
        let sim = UtilitySim::new(cfg);
        let pts = sim.sweep(100, 10, &mut rng);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 100.0);
        for &(_, p) in &pts {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
