//! Non-Homogeneous Poisson Process sampling (Section 2.1).
//!
//! Two samplers are provided:
//! - [`sample_event_times`]: exact event times by thinning (Lewis–Shedler),
//!   used by the event-driven marketplace simulator;
//! - [`sample_interval_counts`]: per-interval counts (one Poisson draw per
//!   interval), used by the fast Monte-Carlo policy executor.

use crate::rate::ArrivalRate;
use ft_stats::Poisson;
use rand::Rng;

/// Sample exact arrival times in `[0, horizon)` by thinning against a
/// majorizing constant rate `rate_bound ≥ sup λ(t)`.
///
/// Panics if `rate_bound` is not a valid upper bound at a proposed point
/// (within a small tolerance), which would silently bias the sample.
pub fn sample_event_times<A: ArrivalRate + ?Sized, R: Rng + ?Sized>(
    arrival: &A,
    horizon: f64,
    rate_bound: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(horizon > 0.0, "horizon must be positive");
    assert!(rate_bound > 0.0, "rate bound must be positive");
    let mut events = Vec::new();
    let mut t = 0.0;
    loop {
        // Exponential inter-arrival of the homogeneous majorizer.
        let mut u: f64 = rng.gen();
        while u <= f64::MIN_POSITIVE {
            u = rng.gen();
        }
        t -= u.ln() / rate_bound;
        if t >= horizon {
            break;
        }
        let lam = arrival.rate(t);
        assert!(
            lam <= rate_bound * (1.0 + 1e-9),
            "rate_bound {rate_bound} is not an upper bound: λ({t}) = {lam}"
        );
        if rng.gen::<f64>() * rate_bound < lam {
            events.push(t);
        }
    }
    events
}

/// Sample per-interval arrival counts for `n_intervals` equal slices of
/// `[0, horizon]`: each count is `Pois(λ_t)` with λ_t from Eq. 4.
pub fn sample_interval_counts<A: ArrivalRate + ?Sized, R: Rng + ?Sized>(
    arrival: &A,
    horizon: f64,
    n_intervals: usize,
    rng: &mut R,
) -> Vec<u64> {
    arrival
        .interval_means(horizon, n_intervals)
        .into_iter()
        .map(|m| Poisson::new(m).sample(rng))
        .collect()
}

/// Sample the count of a *thinned* NHPP over one interval with mean
/// `lambda_t` and thinning probability `p` — the per-interval completion
/// count `Pois(λ_t · p(c))` of Eq. 5.
pub fn sample_thinned_count<R: Rng + ?Sized>(lambda_t: f64, p: f64, rng: &mut R) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "thinning probability must be in [0,1]"
    );
    Poisson::new(lambda_t * p).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{ConstantRate, PiecewiseConstantRate};
    use ft_stats::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn thinning_matches_expected_count_constant() {
        let r = ConstantRate::new(50.0);
        let mut rng = seeded_rng(1);
        let trials = 500;
        let total: usize = (0..trials)
            .map(|_| sample_event_times(&r, 10.0, 50.0, &mut rng).len())
            .sum();
        let mean = total as f64 / trials as f64;
        // E = 500 events; σ/√trials ≈ 1.
        assert_close(mean, 500.0, 4.0);
    }

    #[test]
    fn thinning_matches_expected_count_piecewise() {
        let r = PiecewiseConstantRate::new(1.0, vec![10.0, 90.0, 20.0], false);
        let mut rng = seeded_rng(2);
        let trials = 1000;
        let total: usize = (0..trials)
            .map(|_| sample_event_times(&r, 3.0, 90.0, &mut rng).len())
            .sum();
        let mean = total as f64 / trials as f64;
        assert_close(mean, 120.0, 2.0);
    }

    #[test]
    fn thinning_events_are_sorted_and_in_range() {
        let r = ConstantRate::new(30.0);
        let mut rng = seeded_rng(3);
        let events = sample_event_times(&r, 5.0, 30.0, &mut rng);
        for w in events.windows(2) {
            assert!(w[0] < w[1], "events must be strictly increasing");
        }
        assert!(events.iter().all(|&t| (0.0..5.0).contains(&t)));
    }

    #[test]
    fn thinning_concentrates_in_high_rate_bins() {
        let r = PiecewiseConstantRate::new(1.0, vec![5.0, 100.0], false);
        let mut rng = seeded_rng(4);
        let mut lo = 0usize;
        let mut hi = 0usize;
        for _ in 0..200 {
            for t in sample_event_times(&r, 2.0, 100.0, &mut rng) {
                if t < 1.0 {
                    lo += 1;
                } else {
                    hi += 1;
                }
            }
        }
        let ratio = hi as f64 / lo as f64;
        assert_close(ratio, 20.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "not an upper bound")]
    fn thinning_rejects_bad_bound() {
        let r = ConstantRate::new(100.0);
        let mut rng = seeded_rng(5);
        sample_event_times(&r, 10.0, 10.0, &mut rng);
    }

    #[test]
    fn interval_counts_have_right_mean() {
        let r = PiecewiseConstantRate::new(1.0 / 3.0, vec![60.0; 72], true);
        let mut rng = seeded_rng(6);
        let trials = 2000;
        let mut sums = vec![0u64; 12];
        for _ in 0..trials {
            for (s, c) in sums
                .iter_mut()
                .zip(sample_interval_counts(&r, 4.0, 12, &mut rng))
            {
                *s += c;
            }
        }
        for s in sums {
            // Each interval is 1/3 h at 60/h → mean 20.
            assert_close(s as f64 / trials as f64, 20.0, 0.5);
        }
    }

    #[test]
    fn thinned_count_mean() {
        let mut rng = seeded_rng(7);
        let trials = 20_000;
        let total: u64 = (0..trials)
            .map(|_| sample_thinned_count(1700.0, 0.0016, &mut rng))
            .sum();
        assert_close(total as f64 / trials as f64, 2.72, 0.05);
    }
}
