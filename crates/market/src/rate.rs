//! Worker arrival-rate functions λ(t) for the Non-Homogeneous Poisson
//! Process model (Section 2.1).
//!
//! The paper assumes λ(t) is periodic (weekly) and estimated from binned
//! historical data; the DP solvers only consume per-interval integrals
//! `λ_t = ∫ λ(s) ds` (Eq. 4), which every implementation here provides in
//! closed form.

use serde::{Deserialize, Serialize};

/// A worker arrival-rate function λ(t), with `t` in hours and λ in
/// workers/hour.
pub trait ArrivalRate: Send + Sync {
    /// Instantaneous rate at time `t` (hours). Must be non-negative.
    fn rate(&self, t: f64) -> f64;

    /// `∫_a^b λ(s) ds` — the expected number of arrivals in `[a, b]`.
    fn integral(&self, a: f64, b: f64) -> f64;

    /// Mean rate over `[a, b]` — the λ̄ of Section 4.2.2.
    fn mean_rate(&self, a: f64, b: f64) -> f64 {
        assert!(b > a, "mean_rate needs b > a");
        self.integral(a, b) / (b - a)
    }

    /// Per-interval expected arrival counts for `n_intervals` equal slices
    /// of `[0, horizon]` (the λ_t vector of Eq. 4).
    fn interval_means(&self, horizon: f64, n_intervals: usize) -> Vec<f64> {
        assert!(horizon > 0.0 && n_intervals > 0, "invalid discretization");
        let dt = horizon / n_intervals as f64;
        (0..n_intervals)
            .map(|i| self.integral(i as f64 * dt, (i + 1) as f64 * dt))
            .collect()
    }

    /// Inverse of the cumulative arrival function: the smallest `T ≥ 0`
    /// with `∫_0^T λ = mass`, found by bracketed bisection. Returns `None`
    /// if the mass is not reached within `max_hours`.
    ///
    /// Used to convert worker-arrival counts into wall-clock completion
    /// times (the `E[T|W]` mapping of Section 4.2.2).
    fn inverse_integral(&self, mass: f64, max_hours: f64) -> Option<f64> {
        assert!(mass >= 0.0, "mass must be non-negative");
        if mass == 0.0 {
            return Some(0.0);
        }
        if self.integral(0.0, max_hours) < mass {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, max_hours);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.integral(0.0, mid) >= mass {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo < 1e-9 * max_hours.max(1.0) {
                break;
            }
        }
        Some(hi)
    }
}

/// Constant-rate (homogeneous) arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantRate {
    rate: f64,
}

impl ConstantRate {
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be ≥ 0");
        Self { rate }
    }
}

impl ArrivalRate for ConstantRate {
    fn rate(&self, _t: f64) -> f64 {
        self.rate
    }

    fn integral(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "integral needs b >= a");
        self.rate * (b - a)
    }
}

/// Piecewise-constant rate over equal-width bins, optionally periodic —
/// exactly the representation estimated from mturk-tracker snapshots
/// ("λ(t) is set to be piecewise constant on every 20 minute interval",
/// Section 5.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseConstantRate {
    /// Bin width in hours.
    bin_hours: f64,
    /// Rate (workers/hour) within each bin.
    rates: Vec<f64>,
    /// If true, the profile repeats with period `bin_hours * rates.len()`.
    periodic: bool,
}

impl PiecewiseConstantRate {
    pub fn new(bin_hours: f64, rates: Vec<f64>, periodic: bool) -> Self {
        assert!(bin_hours > 0.0, "bin width must be positive");
        assert!(!rates.is_empty(), "need at least one bin");
        for &r in &rates {
            assert!(r >= 0.0 && r.is_finite(), "rates must be ≥ 0, got {r}");
        }
        Self {
            bin_hours,
            rates,
            periodic,
        }
    }

    /// Construct from arrival *counts* per bin (rate = count / width).
    pub fn from_counts(bin_hours: f64, counts: &[f64], periodic: bool) -> Self {
        let rates = counts.iter().map(|&c| c / bin_hours).collect();
        Self::new(bin_hours, rates, periodic)
    }

    pub fn bin_hours(&self) -> f64 {
        self.bin_hours
    }

    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    pub fn period_hours(&self) -> f64 {
        self.bin_hours * self.rates.len() as f64
    }

    fn bin_index(&self, t: f64) -> usize {
        let period = self.period_hours();
        let t = if self.periodic {
            t.rem_euclid(period)
        } else {
            t.clamp(0.0, period - 1e-12)
        };
        ((t / self.bin_hours) as usize).min(self.rates.len() - 1)
    }

    /// Pointwise scale of all rates (used for sensitivity experiments).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be ≥ 0");
        Self {
            bin_hours: self.bin_hours,
            rates: self.rates.iter().map(|r| r * factor).collect(),
            periodic: self.periodic,
        }
    }
}

impl ArrivalRate for PiecewiseConstantRate {
    fn rate(&self, t: f64) -> f64 {
        if !self.periodic && (t < 0.0 || t >= self.period_hours()) {
            return 0.0;
        }
        self.rates[self.bin_index(t)]
    }

    fn integral(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "integral needs b >= a");
        if b == a {
            return 0.0;
        }
        if self.periodic {
            // F(t) = I_P · ⌊t/P⌋ + G(t mod P) is an antiderivative of the
            // periodic rate; the integral is F(b) − F(a).
            let period = self.period_hours();
            let full = self.within_period_integral(period);
            let f = |t: f64| {
                full * (t / period).floor() + self.within_period_integral(t.rem_euclid(period))
            };
            f(b) - f(a)
        } else {
            let period = self.period_hours();
            let a = a.clamp(0.0, period);
            let b = b.clamp(0.0, period);
            self.within_period_integral(b) - self.within_period_integral(a)
        }
    }
}

impl PiecewiseConstantRate {
    /// `∫_0^x λ(s) ds` for `x ∈ [0, period]`, in closed form.
    fn within_period_integral(&self, x: f64) -> f64 {
        debug_assert!((0.0..=self.period_hours() + 1e-9).contains(&x));
        let bh = self.bin_hours;
        let n = self.rates.len();
        let raw = x / bh;
        let full_bins = (raw.floor() as usize).min(n);
        let mut acc: f64 = self.rates[..full_bins].iter().map(|r| r * bh).sum();
        if full_bins < n {
            let frac = x - full_bins as f64 * bh;
            if frac > 0.0 {
                acc += self.rates[full_bins] * frac;
            }
        }
        acc
    }
}

/// Piecewise-linear rate (Massey et al.'s telecom-traffic form, cited in
/// Section 2.1): linear interpolation between knots `(t_i, λ_i)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinearRate {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinearRate {
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        for w in knots.windows(2) {
            assert!(w[1].0 > w[0].0, "knot times must be strictly increasing");
        }
        for &(_, r) in &knots {
            assert!(r >= 0.0 && r.is_finite(), "rates must be ≥ 0");
        }
        Self { knots }
    }

    fn rate_at(&self, t: f64) -> f64 {
        let first = self.knots[0];
        let last = self.knots[self.knots.len() - 1];
        if t <= first.0 {
            return first.1;
        }
        if t >= last.0 {
            return last.1;
        }
        let idx = self
            .knots
            .partition_point(|&(kt, _)| kt <= t)
            .saturating_sub(1);
        let (t0, r0) = self.knots[idx];
        let (t1, r1) = self.knots[idx + 1];
        r0 + (r1 - r0) * (t - t0) / (t1 - t0)
    }
}

impl ArrivalRate for PiecewiseLinearRate {
    fn rate(&self, t: f64) -> f64 {
        self.rate_at(t)
    }

    fn integral(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "integral needs b >= a");
        if b == a {
            return 0.0;
        }
        // Trapezoid rule over segment boundaries: exact for piecewise
        // linear functions.
        let mut points = vec![a];
        for &(kt, _) in &self.knots {
            if kt > a && kt < b {
                points.push(kt);
            }
        }
        points.push(b);
        let mut acc = 0.0;
        for w in points.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            acc += 0.5 * (self.rate_at(x0) + self.rate_at(x1)) * (x1 - x0);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn constant_rate_integral() {
        let r = ConstantRate::new(100.0);
        assert_eq!(r.rate(5.0), 100.0);
        assert_close(r.integral(1.0, 3.5), 250.0, 1e-12);
        assert_close(r.mean_rate(0.0, 10.0), 100.0, 1e-12);
    }

    #[test]
    fn piecewise_constant_lookup_and_integral() {
        // 3 bins of 1 hour: rates 10, 20, 30.
        let r = PiecewiseConstantRate::new(1.0, vec![10.0, 20.0, 30.0], false);
        assert_eq!(r.rate(0.5), 10.0);
        assert_eq!(r.rate(1.5), 20.0);
        assert_eq!(r.rate(2.99), 30.0);
        assert_eq!(r.rate(3.5), 0.0); // non-periodic: zero outside
        assert_close(r.integral(0.0, 3.0), 60.0, 1e-9);
        assert_close(r.integral(0.5, 1.5), 5.0 + 10.0, 1e-9);
        assert_close(r.integral(0.25, 0.75), 5.0, 1e-9);
    }

    #[test]
    fn piecewise_constant_periodic_wraps() {
        let r = PiecewiseConstantRate::new(1.0, vec![10.0, 20.0], true);
        assert_eq!(r.rate(2.5), 10.0); // wraps to bin 0
        assert_eq!(r.rate(3.5), 20.0);
        assert_eq!(r.rate(-0.5), 20.0); // rem_euclid handles negatives
        assert_close(r.integral(0.0, 4.0), 60.0, 1e-9);
        assert_close(r.integral(1.5, 2.5), 10.0 + 5.0, 1e-9);
    }

    #[test]
    fn interval_means_partition_total() {
        let r = PiecewiseConstantRate::new(1.0 / 3.0, vec![30.0; 72], true);
        let means = r.interval_means(24.0, 72);
        assert_eq!(means.len(), 72);
        let total: f64 = means.iter().sum();
        assert_close(total, r.integral(0.0, 24.0), 1e-6);
        for m in means {
            assert_close(m, 10.0, 1e-9);
        }
    }

    #[test]
    fn from_counts_converts_to_rates() {
        // 20-minute bins with 100 arrivals each → 300 workers/hour.
        let r = PiecewiseConstantRate::from_counts(1.0 / 3.0, &[100.0, 100.0], false);
        assert_close(r.rate(0.1), 300.0, 1e-9);
        assert_close(r.integral(0.0, 2.0 / 3.0), 200.0, 1e-9);
    }

    #[test]
    fn piecewise_linear_exact_trapezoids() {
        let r = PiecewiseLinearRate::new(vec![(0.0, 0.0), (2.0, 10.0), (4.0, 0.0)]);
        assert_close(r.rate(1.0), 5.0, 1e-12);
        assert_close(r.rate(3.0), 5.0, 1e-12);
        // Triangle area = 0.5 * base * height = 0.5 * 4 * 10 = 20.
        assert_close(r.integral(0.0, 4.0), 20.0, 1e-12);
        // Before the first knot the rate is clamped.
        assert_close(r.rate(-1.0), 0.0, 1e-12);
        assert_close(r.rate(9.0), 0.0, 1e-12);
    }

    #[test]
    fn piecewise_linear_subsegment_integral() {
        let r = PiecewiseLinearRate::new(vec![(0.0, 10.0), (10.0, 20.0)]);
        // ∫_2^4 (10 + t) dt = [10t + t²/2] = (40 + 8) − (20 + 2) = 26.
        assert_close(r.integral(2.0, 4.0), 26.0, 1e-12);
    }

    #[test]
    fn scaled_rate() {
        let r = PiecewiseConstantRate::new(1.0, vec![10.0, 20.0], true).scaled(1.5);
        assert_eq!(r.rate(0.5), 15.0);
        assert_eq!(r.rate(1.5), 30.0);
    }

    #[test]
    fn inverse_integral_roundtrip() {
        let r = PiecewiseConstantRate::new(1.0, vec![10.0, 30.0, 20.0], true);
        for &mass in &[0.0, 5.0, 25.0, 100.0, 500.0] {
            let t = r.inverse_integral(mass, 1000.0).unwrap();
            assert_close(r.integral(0.0, t), mass, 1e-3);
        }
        // Unreachable mass within the window.
        assert!(r.inverse_integral(1e9, 10.0).is_none());
    }

    #[test]
    fn additivity_of_integral() {
        let r = PiecewiseConstantRate::new(0.4, vec![3.0, 7.0, 1.0, 9.0, 2.0], true);
        let whole = r.integral(0.3, 5.7);
        let split = r.integral(0.3, 2.0) + r.integral(2.0, 5.7);
        assert_close(whole, split, 1e-9);
    }
}
