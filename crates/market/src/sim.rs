//! Event-driven marketplace simulator for the live experiments of
//! Section 5.4.
//!
//! Mechanics mirror the paper's Mechanical Turk deployment: a batch of
//! identical tasks is posted as HITs of `group_size` tasks each, at a fixed
//! HIT price ($0.02); the *effective* per-task price is varied by changing
//! the grouping size. Workers arrive by an NHPP, decide whether to take a
//! HIT via a logit acceptance model on the per-task wage, then complete a
//! price-dependent number of HITs per session, answering each task with
//! worker-specific accuracy.

use crate::nhpp::sample_event_times;
use crate::rate::ArrivalRate;
use crate::worker::{AccuracyModel, SessionModel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth HIT acceptance as a piecewise-linear table in the
/// per-task price (fractional cents).
///
/// Real completion-rate data is *not* a clean logit in the per-task price
/// (the paper's own Fig. 12(a) shows group 20 far ahead of 30 despite a
/// small price difference, while 30/40/50 bunch together), so the live
/// simulator's ground truth is an empirical anchor table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAcceptanceModel {
    /// Sorted `(per_task_cents, probability)` anchors.
    anchors: Vec<(f64, f64)>,
}

impl Default for GroupAcceptanceModel {
    fn default() -> Self {
        // Calibrated to the Fig. 12(a) curve shapes for a 2¢ HIT split into
        // 10/20/30/40/50 tasks (per-task prices 0.2/0.1/0.067/0.05/0.04¢):
        // group 10 completes >2× faster than 20 and >4× faster than
        // 30/40/50, groups 30/40/50 nearly indistinguishable, group 20
        // finishes by ~hour 8.
        Self::new(vec![
            (0.04, 0.00076),
            (0.05, 0.00078),
            (2.0 / 30.0, 0.00096),
            (0.1, 0.0031),
            (0.2, 0.0061),
        ])
    }
}

impl GroupAcceptanceModel {
    pub fn new(mut anchors: Vec<(f64, f64)>) -> Self {
        assert!(!anchors.is_empty(), "need at least one anchor");
        anchors.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN price"));
        for &(c, p) in &anchors {
            assert!(c >= 0.0, "prices must be non-negative");
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        Self { anchors }
    }

    /// Acceptance probability at a per-task price in (possibly fractional)
    /// cents, linearly interpolated and clamped outside the anchor range.
    pub fn p(&self, per_task_cents: f64) -> f64 {
        assert!(per_task_cents >= 0.0, "price must be non-negative");
        let first = self.anchors[0];
        let last = self.anchors[self.anchors.len() - 1];
        if per_task_cents <= first.0 {
            return first.1;
        }
        if per_task_cents >= last.0 {
            return last.1;
        }
        let idx = self
            .anchors
            .partition_point(|&(c, _)| c <= per_task_cents)
            .saturating_sub(1);
        let (c0, p0) = self.anchors[idx];
        let (c1, p1) = self.anchors[idx + 1];
        p0 + (p1 - p0) * (per_task_cents - c0) / (c1 - c0)
    }
}

/// Decides the grouping size at each repricing epoch.
pub trait GroupController {
    /// Grouping size to use from time `t_hours` given the number of
    /// individual tasks still incomplete.
    fn group_size(&mut self, t_hours: f64, tasks_remaining: u32) -> u32;
}

/// Constant grouping size (the fixed-pricing trials of Section 5.4.1).
#[derive(Debug, Clone, Copy)]
pub struct FixedGroup(pub u32);

impl GroupController for FixedGroup {
    fn group_size(&mut self, _t: f64, _remaining: u32) -> u32 {
        self.0
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveSimConfig {
    /// Total individual tasks in the batch (paper: 5000 photo pairs).
    pub total_tasks: u32,
    /// Deadline in hours after posting (paper: 14, from 8am to 10pm PST).
    pub horizon_hours: f64,
    /// Price of one HIT in cents (paper: 2).
    pub hit_price_cents: u32,
    /// Average seconds a worker spends per task.
    pub task_seconds: f64,
    /// How often the controller may change the grouping size (hours).
    pub reprice_hours: f64,
    pub accuracy: AccuracyModel,
    pub session: SessionModel,
    pub acceptance: GroupAcceptanceModel,
}

impl Default for LiveSimConfig {
    fn default() -> Self {
        Self {
            total_tasks: 5000,
            horizon_hours: 14.0,
            hit_price_cents: 2,
            task_seconds: 15.0,
            reprice_hours: 1.0,
            accuracy: AccuracyModel::default(),
            session: SessionModel::default(),
            acceptance: GroupAcceptanceModel::default(),
        }
    }
}

/// One completed HIT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitCompletion {
    /// Wall-clock completion time in hours from posting.
    pub time_hours: f64,
    /// Grouping size in effect when the HIT was taken.
    pub group_size: u32,
    /// Tasks actually contained (the final HIT may be short).
    pub tasks: u32,
    /// Correct answers among them.
    pub correct: u32,
    /// Worker identifier.
    pub worker: u32,
}

/// One worker session: the consecutive HITs a worker completed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    pub worker: u32,
    pub group_size: u32,
    pub hits: u32,
    pub per_task_cents: f64,
}

/// Full simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiveOutcome {
    pub completions: Vec<HitCompletion>,
    pub sessions: Vec<SessionRecord>,
    /// Total paid, in cents (one HIT price per completed HIT).
    pub cost_cents: u64,
    pub tasks_completed: u32,
    /// Time the batch finished, if it did before all arrivals ran out.
    pub finish_time_hours: Option<f64>,
    /// Number of worker arrivals observed (for acceptance-rate estimation).
    pub arrivals: u32,
}

impl LiveOutcome {
    /// Individual tasks completed by time `t` (hours).
    pub fn tasks_completed_by(&self, t: f64) -> u32 {
        self.completions
            .iter()
            .filter(|c| c.time_hours <= t)
            .map(|c| c.tasks)
            .sum()
    }

    /// HITs completed by time `t` (hours).
    pub fn hits_completed_by(&self, t: f64) -> u32 {
        self.completions
            .iter()
            .filter(|c| c.time_hours <= t)
            .count() as u32
    }

    /// Fraction of total work done by time `t`.
    pub fn work_fraction_by(&self, t: f64, total_tasks: u32) -> f64 {
        self.tasks_completed_by(t) as f64 / total_tasks as f64
    }

    /// Per-HIT accuracy values for HITs with the given group size.
    pub fn hit_accuracies(&self, group_size: Option<u32>) -> Vec<f64> {
        self.completions
            .iter()
            .filter(|c| group_size.is_none_or(|g| c.group_size == g) && c.tasks > 0)
            .map(|c| c.correct as f64 / c.tasks as f64)
            .collect()
    }

    /// Average HITs per worker session at a given group size (Fig. 15).
    pub fn mean_hits_per_session(&self, group_size: u32) -> f64 {
        let (mut n, mut total) = (0u32, 0u64);
        for s in &self.sessions {
            if s.group_size == group_size {
                n += 1;
                total += s.hits as u64;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            total as f64 / n as f64
        }
    }
}

/// Run the event-driven simulation.
///
/// `rate_bound` must dominate the arrival rate over the horizon (for the
/// thinning sampler).
pub fn run_live_sim<A, C, R>(
    config: &LiveSimConfig,
    arrival: &A,
    rate_bound: f64,
    controller: &mut C,
    rng: &mut R,
) -> LiveOutcome
where
    A: ArrivalRate + ?Sized,
    C: GroupController + ?Sized,
    R: Rng + ?Sized,
{
    assert!(config.total_tasks > 0, "need at least one task");
    assert!(config.horizon_hours > 0.0, "horizon must be positive");
    assert!(
        config.reprice_hours > 0.0,
        "repricing period must be positive"
    );

    let arrivals = sample_event_times(arrival, config.horizon_hours, rate_bound, rng);
    let mut remaining = config.total_tasks;
    let mut completions = Vec::new();
    let mut sessions = Vec::new();
    let mut cost_cents = 0u64;
    let mut finish_time = None;
    let mut next_epoch = 0.0f64;
    let mut group = 0u32;
    let n_arrivals = arrivals.len() as u32;

    for (idx, t) in arrivals.into_iter().enumerate() {
        if remaining == 0 {
            break;
        }
        // Advance repricing epochs up to the current arrival.
        while t >= next_epoch {
            group = controller.group_size(next_epoch, remaining).max(1);
            next_epoch += config.reprice_hours;
        }
        let worker_id = idx as u32 + 1;
        let per_task_cents = config.hit_price_cents as f64 / group as f64;
        if rng.gen::<f64>() >= config.acceptance.p(per_task_cents) {
            continue;
        }
        // The worker starts a session.
        let worker_effect = config.accuracy.sample_worker_effect(rng);
        let session_len = config.session.sample_session_len(per_task_cents, rng);
        let mut hits_done = 0u32;
        let mut work_hours = 0.0f64;
        for _ in 0..session_len {
            if remaining == 0 {
                break;
            }
            let tasks = group.min(remaining);
            work_hours += tasks as f64 * config.task_seconds / 3600.0;
            let correct = config.accuracy.sample_correct(tasks, worker_effect, rng);
            completions.push(HitCompletion {
                time_hours: t + work_hours,
                group_size: group,
                tasks,
                correct,
                worker: worker_id,
            });
            cost_cents += config.hit_price_cents as u64;
            remaining -= tasks;
            hits_done += 1;
            if remaining == 0 {
                finish_time = Some(t + work_hours);
            }
        }
        if hits_done > 0 {
            sessions.push(SessionRecord {
                worker: worker_id,
                group_size: group,
                hits: hits_done,
                per_task_cents,
            });
        }
    }

    LiveOutcome {
        completions,
        sessions,
        cost_cents,
        tasks_completed: config.total_tasks - remaining,
        finish_time_hours: finish_time,
        arrivals: n_arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::ConstantRate;
    use ft_stats::seeded_rng;

    fn small_config() -> LiveSimConfig {
        LiveSimConfig {
            total_tasks: 500,
            horizon_hours: 14.0,
            ..Default::default()
        }
    }

    #[test]
    fn conservation_of_tasks_and_cost() {
        let cfg = small_config();
        let arrival = ConstantRate::new(2000.0);
        let mut rng = seeded_rng(1);
        let out = run_live_sim(&cfg, &arrival, 2000.0, &mut FixedGroup(10), &mut rng);
        let total_from_hits: u32 = out.completions.iter().map(|c| c.tasks).sum();
        assert_eq!(total_from_hits, out.tasks_completed);
        assert!(out.tasks_completed <= cfg.total_tasks);
        assert_eq!(
            out.cost_cents,
            out.completions.len() as u64 * cfg.hit_price_cents as u64
        );
        // Correct answers never exceed tasks.
        for c in &out.completions {
            assert!(c.correct <= c.tasks);
        }
    }

    #[test]
    fn smaller_groups_complete_faster() {
        // Per-task price is higher at group 10 → more acceptance → faster.
        let cfg = LiveSimConfig {
            total_tasks: 5000,
            ..Default::default()
        };
        let arrival = ConstantRate::new(6000.0);
        let mut rng = seeded_rng(2);
        let g10 = run_live_sim(&cfg, &arrival, 6000.0, &mut FixedGroup(10), &mut rng);
        let g50 = run_live_sim(&cfg, &arrival, 6000.0, &mut FixedGroup(50), &mut rng);
        assert!(
            g10.tasks_completed_by(6.0) > 2 * g50.tasks_completed_by(6.0),
            "g10 at 6h: {}, g50 at 6h: {}",
            g10.tasks_completed_by(6.0),
            g50.tasks_completed_by(6.0)
        );
    }

    #[test]
    fn group10_finishes_before_deadline() {
        let cfg = LiveSimConfig {
            total_tasks: 5000,
            ..Default::default()
        };
        let arrival = ConstantRate::new(6000.0);
        let mut rng = seeded_rng(3);
        let out = run_live_sim(&cfg, &arrival, 6000.0, &mut FixedGroup(10), &mut rng);
        assert_eq!(out.tasks_completed, 5000);
        assert!(out.finish_time_hours.unwrap() < 14.0);
    }

    #[test]
    fn sessions_longer_at_higher_per_task_price() {
        let cfg = LiveSimConfig {
            total_tasks: 100_000, // effectively unbounded
            ..Default::default()
        };
        let arrival = ConstantRate::new(6000.0);
        let mut rng = seeded_rng(4);
        let g10 = run_live_sim(&cfg, &arrival, 6000.0, &mut FixedGroup(10), &mut rng);
        let g50 = run_live_sim(&cfg, &arrival, 6000.0, &mut FixedGroup(50), &mut rng);
        assert!(g10.mean_hits_per_session(10) > g50.mean_hits_per_session(50));
    }

    #[test]
    fn accuracy_near_ninety_percent() {
        let cfg = LiveSimConfig {
            total_tasks: 5000,
            ..Default::default()
        };
        let arrival = ConstantRate::new(6000.0);
        let mut rng = seeded_rng(5);
        let out = run_live_sim(&cfg, &arrival, 6000.0, &mut FixedGroup(20), &mut rng);
        let accs = out.hit_accuracies(Some(20));
        assert!(!accs.is_empty());
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!((0.85..0.96).contains(&mean), "mean accuracy {mean}");
    }

    #[test]
    fn controller_epochs_are_respected() {
        // A controller that switches group size at hour 2; verify HITs
        // before/after use the right size.
        struct Switcher;
        impl GroupController for Switcher {
            fn group_size(&mut self, t: f64, _n: u32) -> u32 {
                if t < 2.0 {
                    10
                } else {
                    50
                }
            }
        }
        let cfg = LiveSimConfig {
            total_tasks: 100_000,
            ..Default::default()
        };
        let arrival = ConstantRate::new(6000.0);
        let mut rng = seeded_rng(6);
        let out = run_live_sim(&cfg, &arrival, 6000.0, &mut Switcher, &mut rng);
        for c in &out.completions {
            // Allow carry-over work: a HIT accepted just before hour 2 has
            // group 10 but may complete slightly after.
            if c.time_hours < 2.0 {
                assert_eq!(c.group_size, 10);
            }
            if c.time_hours > 2.5 {
                assert_eq!(c.group_size, 50);
            }
        }
    }

    #[test]
    fn acceptance_model_ordering() {
        // Effective HIT completion rates (acceptance × expected session
        // length) must reproduce the Fig. 12(a) ordering.
        let a = GroupAcceptanceModel::default();
        let s = SessionModel::default();
        let hit_rate = |g: f64| {
            let c = 2.0 / g;
            a.p(c) * s.expected_hits(c)
        };
        let r10 = hit_rate(10.0);
        let r20 = hit_rate(20.0);
        let r30 = hit_rate(30.0);
        let r40 = hit_rate(40.0);
        let r50 = hit_rate(50.0);
        assert!(r10 > 2.0 * r20, "r10={r10}, r20={r20}");
        assert!(r10 > 4.0 * r30, "r10={r10}, r30={r30}");
        // 30/40/50 HIT rates are close (within 45% of each other).
        assert!(r30 / r50 < 1.45 && r50 / r30 < 1.45);
        assert!(r40 / r50 < 1.3 && r50 / r40 < 1.3);
    }

    #[test]
    fn acceptance_model_interpolates_and_clamps() {
        let a = GroupAcceptanceModel::new(vec![(0.1, 0.001), (0.2, 0.003)]);
        assert!((a.p(0.15) - 0.002).abs() < 1e-12);
        assert_eq!(a.p(0.05), 0.001);
        assert_eq!(a.p(0.5), 0.003);
    }
}
