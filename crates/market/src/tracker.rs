//! Synthetic mturk-tracker data (substitutes the scraped
//! mturk-tracker.com snapshots used in Sections 5.1.2 and 5.2).
//!
//! Two artifacts are generated:
//!
//! 1. A multi-week arrival trace binned at 20 minutes (Fig. 1): a weekly
//!    periodic rate — diurnal cycle × day-of-week factor — observed through
//!    Poisson noise, with optional anomalous days (the "1/1" consistent
//!    deviation of Fig. 10(c)).
//! 2. HIT-group snapshots (Fig. 6 / Table 2): task groups with a task type,
//!    wage-per-second, and completed workload-per-hour following the
//!    log-linear utility relationship of Section 5.1.2.

use crate::rate::PiecewiseConstantRate;
use crate::types::TaskType;
use ft_stats::{Normal, Poisson};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic weekly arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Number of weeks to generate.
    pub weeks: usize,
    /// Bin width in minutes (the tracker snapshots every 20 minutes).
    pub bin_minutes: u32,
    /// Mean marketplace throughput in workers/hour (≈6000 on MTurk).
    pub base_rate_per_hour: f64,
    /// Relative amplitude of the diurnal cycle in [0, 1).
    pub diurnal_amplitude: f64,
    /// Hour of day (PST-like) at which the diurnal cycle peaks.
    pub diurnal_peak_hour: f64,
    /// Multiplicative factor per day of week (index 0 = Monday).
    pub day_of_week_factor: [f64; 7],
    /// Days (absolute index from the start) whose rate deviates by a
    /// consistent factor — models holidays like Jan 1.
    pub anomalies: Vec<(usize, f64)>,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            weeks: 4,
            bin_minutes: 20,
            base_rate_per_hour: 6000.0,
            diurnal_amplitude: 0.45,
            diurnal_peak_hour: 13.0,
            day_of_week_factor: [1.05, 1.08, 1.06, 1.04, 1.0, 0.88, 0.89],
            anomalies: Vec::new(),
        }
    }
}

impl TrackerConfig {
    /// The paper's January 2014 window: 4 weeks starting Wednesday Jan 1,
    /// with Jan 1 anomalously quiet (Fig. 10(c)).
    pub fn january_2014() -> Self {
        Self {
            // Jan 1, 2014 was a Wednesday: rotate so day 0 uses Wednesday's
            // factor by shifting the anomaly day only; the weekly factor
            // array stays Monday-indexed and `day_of_week` handles offset.
            anomalies: vec![(0, 0.55)],
            ..Self::default()
        }
    }

    /// Ground-truth (noise-free) rate at absolute time `t` hours from the
    /// start of the window.
    pub fn true_rate(&self, t: f64) -> f64 {
        let day = (t / 24.0).floor() as usize;
        let hour_of_day = t.rem_euclid(24.0);
        let diurnal = 1.0
            + self.diurnal_amplitude
                * ((hour_of_day - self.diurnal_peak_hour) / 24.0 * 2.0 * std::f64::consts::PI)
                    .cos();
        let dow = self.day_of_week_factor[day % 7];
        let anomaly = self
            .anomalies
            .iter()
            .find(|&&(d, _)| d == day)
            .map_or(1.0, |&(_, f)| f);
        self.base_rate_per_hour * diurnal * dow * anomaly
    }

    pub fn bins_per_day(&self) -> usize {
        (24 * 60 / self.bin_minutes) as usize
    }

    pub fn total_days(&self) -> usize {
        self.weeks * 7
    }
}

/// A generated arrival trace: Poisson-noisy per-bin counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerTrace {
    pub config: TrackerConfig,
    /// Observed arrival counts per bin over the whole window.
    pub counts: Vec<u64>,
}

impl TrackerTrace {
    /// Generate a trace: each bin's count is `Pois(∫ λ_true)`.
    pub fn generate<R: Rng + ?Sized>(config: TrackerConfig, rng: &mut R) -> Self {
        let bins_per_day = config.bins_per_day();
        let total_bins = bins_per_day * config.total_days();
        let bin_hours = config.bin_minutes as f64 / 60.0;
        let mut counts = Vec::with_capacity(total_bins);
        for b in 0..total_bins {
            // Midpoint rule is exact enough at 20-minute resolution.
            let mid = (b as f64 + 0.5) * bin_hours;
            let mean = config.true_rate(mid) * bin_hours;
            counts.push(Poisson::new(mean).sample(rng));
        }
        Self { config, counts }
    }

    pub fn bin_hours(&self) -> f64 {
        self.config.bin_minutes as f64 / 60.0
    }

    /// Counts for day `d` (0-based), one entry per bin.
    pub fn day_counts(&self, d: usize) -> &[u64] {
        let bpd = self.config.bins_per_day();
        assert!(d < self.config.total_days(), "day {d} out of range");
        &self.counts[d * bpd..(d + 1) * bpd]
    }

    /// Aggregate counts into coarser windows of `hours` (e.g. 6h for
    /// Fig. 1). Returns `(window_start_hour, count)` pairs.
    pub fn aggregate(&self, hours: f64) -> Vec<(f64, u64)> {
        assert!(hours > 0.0, "window must be positive");
        let bin_hours = self.bin_hours();
        let bins_per_window = (hours / bin_hours).round().max(1.0) as usize;
        self.counts
            .chunks(bins_per_window)
            .enumerate()
            .map(|(i, chunk)| {
                (
                    i as f64 * bins_per_window as f64 * bin_hours,
                    chunk.iter().sum(),
                )
            })
            .collect()
    }

    /// Total observed arrivals.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Piecewise-constant 24h rate estimated by averaging the given days
    /// bin-by-bin (the paper's Fig. 10 training procedure: "the training
    /// arrival-rate is the average arrival-rate of the other 3 days").
    pub fn average_day_rate(&self, days: &[usize]) -> PiecewiseConstantRate {
        assert!(!days.is_empty(), "need at least one day to average");
        let bpd = self.config.bins_per_day();
        let mut avg = vec![0.0; bpd];
        for &d in days {
            for (a, &c) in avg.iter_mut().zip(self.day_counts(d)) {
                *a += c as f64;
            }
        }
        for a in &mut avg {
            *a /= days.len() as f64;
        }
        PiecewiseConstantRate::from_counts(self.bin_hours(), &avg, true)
    }

    /// The observed rate of a single day as a periodic 24h profile.
    pub fn day_rate(&self, d: usize) -> PiecewiseConstantRate {
        let counts: Vec<f64> = self.day_counts(d).iter().map(|&c| c as f64).collect();
        PiecewiseConstantRate::from_counts(self.bin_hours(), &counts, true)
    }

    /// The ground-truth rate of day `d` as a periodic profile (no noise).
    pub fn true_day_rate(&self, d: usize) -> PiecewiseConstantRate {
        let bpd = self.config.bins_per_day();
        let bin_hours = self.bin_hours();
        let rates: Vec<f64> = (0..bpd)
            .map(|b| {
                let mid = d as f64 * 24.0 + (b as f64 + 0.5) * bin_hours;
                self.config.true_rate(mid)
            })
            .collect();
        PiecewiseConstantRate::new(bin_hours, rates, true)
    }
}

/// One HIT-group snapshot observation (Fig. 6 axes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitGroupObs {
    pub task_type: TaskType,
    /// Wage per second in dollars.
    pub wage_per_sec: f64,
    /// Completed workload per hour in seconds of work
    /// (avg completed tasks/hour × avg seconds/task).
    pub workload_per_hour: f64,
    /// Manually-estimated average seconds per task.
    pub avg_task_seconds: f64,
}

/// Generator config for HIT-group snapshots, parameterized by the
/// log-linear utility relationship the paper estimates in Table 2:
/// `log(workload/hour) = α · wage/sec + b_type + ε`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotConfig {
    /// Shared wage coefficient α (paper estimate ≈ 748–809 per $/sec).
    pub alpha: f64,
    /// Per-type bias terms (paper: 3.66 categorization, 6.28 data
    /// collection).
    pub bias_categorization: f64,
    pub bias_data_collection: f64,
    /// Std-dev of the utility noise ε.
    pub noise_sd: f64,
    /// Range of wages to draw from, $/sec.
    pub wage_range: (f64, f64),
    /// Range of average task durations, seconds.
    pub task_seconds_range: (f64, f64),
}

impl Default for SnapshotConfig {
    // 6.28 is the paper's Table 2 bias estimate, not an approximation of τ.
    #[allow(clippy::approx_constant)]
    fn default() -> Self {
        Self {
            alpha: 780.0,
            bias_categorization: 3.66,
            bias_data_collection: 6.28,
            noise_sd: 0.35,
            wage_range: (0.0002, 0.0035),
            task_seconds_range: (20.0, 240.0),
        }
    }
}

impl SnapshotConfig {
    pub fn bias(&self, t: TaskType) -> f64 {
        match t {
            TaskType::Categorization => self.bias_categorization,
            TaskType::DataCollection => self.bias_data_collection,
        }
    }
}

/// Generate `n` HIT-group observations split evenly between the two task
/// types (the paper samples 100 groups with ≥50 completions).
pub fn generate_snapshots<R: Rng + ?Sized>(
    n: usize,
    config: &SnapshotConfig,
    rng: &mut R,
) -> Vec<HitGroupObs> {
    assert!(n >= 2, "need at least one group per type");
    let noise = Normal::new(0.0, config.noise_sd.max(1e-9));
    (0..n)
        .map(|i| {
            let task_type = if i % 2 == 0 {
                TaskType::Categorization
            } else {
                TaskType::DataCollection
            };
            let (w0, w1) = config.wage_range;
            let wage_per_sec = w0 + rng.gen::<f64>() * (w1 - w0);
            let (s0, s1) = config.task_seconds_range;
            let avg_task_seconds = s0 + rng.gen::<f64>() * (s1 - s0);
            let log_workload =
                config.alpha * wage_per_sec + config.bias(task_type) + noise.sample(rng);
            HitGroupObs {
                task_type,
                wage_per_sec,
                workload_per_hour: log_workload.exp(),
                avg_task_seconds,
            }
        })
        .collect()
}

/// The trained arrival-rate model the paper uses by default in Section 5.2:
/// the full-window average weekly profile as a piecewise-constant periodic
/// rate over one week.
pub fn weekly_average_rate(trace: &TrackerTrace) -> PiecewiseConstantRate {
    let bpd = trace.config.bins_per_day();
    let bins_per_week = bpd * 7;
    let mut avg = vec![0.0; bins_per_week];
    let mut weeks = vec![0u32; bins_per_week];
    for (i, &c) in trace.counts.iter().enumerate() {
        let slot = i % bins_per_week;
        avg[slot] += c as f64;
        weeks[slot] += 1;
    }
    for (a, &w) in avg.iter_mut().zip(&weeks) {
        if w > 0 {
            *a /= w as f64;
        }
    }
    PiecewiseConstantRate::from_counts(trace.bin_hours(), &avg, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::ArrivalRate;
    use ft_stats::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn trace_dimensions() {
        let mut rng = seeded_rng(1);
        let t = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
        assert_eq!(t.config.bins_per_day(), 72);
        assert_eq!(t.counts.len(), 72 * 28);
        assert_eq!(t.day_counts(3).len(), 72);
    }

    #[test]
    fn trace_mean_matches_base_rate() {
        let mut rng = seeded_rng(2);
        let cfg = TrackerConfig::default();
        let t = TrackerTrace::generate(cfg.clone(), &mut rng);
        let hours = 24.0 * cfg.total_days() as f64;
        let mean_rate = t.total() as f64 / hours;
        // Day-of-week factors average slightly above 1; allow 5%.
        assert_close(mean_rate, 6000.0, 320.0);
    }

    #[test]
    fn weekly_periodicity_of_true_rate() {
        let cfg = TrackerConfig::default();
        for &t in &[3.0, 25.5, 100.0] {
            assert_close(cfg.true_rate(t), cfg.true_rate(t + 7.0 * 24.0), 1e-9);
        }
    }

    #[test]
    fn anomaly_reduces_day_rate() {
        let cfg = TrackerConfig::january_2014();
        // Day 0 is anomalous at factor 0.55; compare to the same weekday a
        // week later.
        let r0 = cfg.true_rate(12.0);
        let r7 = cfg.true_rate(12.0 + 7.0 * 24.0);
        assert_close(r0 / r7, 0.55, 1e-9);
    }

    #[test]
    fn aggregate_6h_windows() {
        let mut rng = seeded_rng(3);
        let t = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
        let agg = t.aggregate(6.0);
        assert_eq!(agg.len(), 28 * 4);
        assert_eq!(agg[1].0, 6.0);
        let sum: u64 = agg.iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, t.total());
    }

    #[test]
    fn average_day_rate_reduces_noise() {
        let mut rng = seeded_rng(4);
        let cfg = TrackerConfig::default();
        let t = TrackerTrace::generate(cfg.clone(), &mut rng);
        // Average the four Mondays (days 0, 7, 14, 21): integral over 24h
        // should be close to the true Monday arrival mass.
        let rate = t.average_day_rate(&[0, 7, 14, 21]);
        let est = rate.integral(0.0, 24.0);
        let truth = {
            // Numerically integrate the true rate over day 0.
            let mut acc = 0.0;
            let h = 1.0 / 60.0;
            let mut x = 0.0;
            while x < 24.0 {
                acc += cfg.true_rate(x + h / 2.0) * h;
                x += h;
            }
            acc
        };
        assert_close(est / truth, 1.0, 0.02);
    }

    #[test]
    fn day_rate_is_periodic_24h() {
        let mut rng = seeded_rng(5);
        let t = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
        let r = t.day_rate(2);
        assert_close(r.rate(1.0), r.rate(25.0), 1e-9);
    }

    #[test]
    fn weekly_average_rate_period() {
        let mut rng = seeded_rng(6);
        let t = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
        let r = weekly_average_rate(&t);
        assert_close(r.period_hours(), 7.0 * 24.0, 1e-9);
        // Weekly averaging over 4 weeks keeps total mass right.
        let est = r.integral(0.0, 7.0 * 24.0) * 4.0;
        assert_close(est / t.total() as f64, 1.0, 1e-6);
    }

    #[test]
    fn snapshots_follow_log_linear_law() {
        let mut rng = seeded_rng(7);
        let cfg = SnapshotConfig {
            noise_sd: 1e-9,
            ..Default::default()
        };
        let obs = generate_snapshots(50, &cfg, &mut rng);
        assert_eq!(obs.len(), 50);
        for o in &obs {
            let expected = (cfg.alpha * o.wage_per_sec + cfg.bias(o.task_type)).exp();
            assert_close(o.workload_per_hour / expected, 1.0, 1e-6);
        }
        // Both types present.
        assert!(obs.iter().any(|o| o.task_type == TaskType::Categorization));
        assert!(obs.iter().any(|o| o.task_type == TaskType::DataCollection));
    }

    #[test]
    fn data_collection_more_attractive() {
        // At equal wage, DataCollection workload must exceed Categorization
        // (the paper's bias difference 6.28 vs 3.66).
        let cfg = SnapshotConfig::default();
        let w = 0.001;
        let cat = (cfg.alpha * w + cfg.bias(TaskType::Categorization)).exp();
        let dc = (cfg.alpha * w + cfg.bias(TaskType::DataCollection)).exp();
        assert!(dc / cat > 10.0);
    }
}
