//! Shared marketplace domain types.

use serde::{Deserialize, Serialize};

/// Task reward in integer cents — "an integral multiple of a minimal unit
/// of price (in Amazon Mechanical Turk it is 1 cent)" (Section 3.1).
pub type Cents = u32;

/// Time measured in hours from the start of a campaign.
pub type Hours = f64;

/// Number of tasks.
pub type TaskCount = u32;

/// An inclusive price grid `[min, max]` in integer cents with unit step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriceGrid {
    pub min: Cents,
    pub max: Cents,
}

impl PriceGrid {
    pub fn new(min: Cents, max: Cents) -> Self {
        assert!(
            min <= max,
            "price grid needs min <= max, got [{min}, {max}]"
        );
        Self { min, max }
    }

    /// Number of price choices `C` on the grid.
    pub fn len(&self) -> usize {
        (self.max - self.min + 1) as usize
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over all prices.
    pub fn iter(&self) -> impl Iterator<Item = Cents> + '_ {
        self.min..=self.max
    }

    pub fn contains(&self, c: Cents) -> bool {
        (self.min..=self.max).contains(&c)
    }

    /// Clamp a price onto the grid.
    pub fn clamp(&self, c: Cents) -> Cents {
        c.clamp(self.min, self.max)
    }
}

/// The two task types observed in the tracker data (Section 5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskType {
    Categorization,
    DataCollection,
}

impl TaskType {
    pub const ALL: [TaskType; 2] = [TaskType::Categorization, TaskType::DataCollection];

    pub fn name(&self) -> &'static str {
        match self {
            TaskType::Categorization => "Categorization",
            TaskType::DataCollection => "Data Collection",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_grid_len_and_iter() {
        let g = PriceGrid::new(5, 9);
        assert_eq!(g.len(), 5);
        let v: Vec<Cents> = g.iter().collect();
        assert_eq!(v, vec![5, 6, 7, 8, 9]);
        assert!(g.contains(5) && g.contains(9) && !g.contains(10));
        assert_eq!(g.clamp(2), 5);
        assert_eq!(g.clamp(100), 9);
        assert_eq!(g.clamp(7), 7);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn price_grid_rejects_inverted() {
        PriceGrid::new(10, 5);
    }

    #[test]
    fn singleton_grid() {
        let g = PriceGrid::new(3, 3);
        assert_eq!(g.len(), 1);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![3]);
    }
}
