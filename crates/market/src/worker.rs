//! Worker behavior models for the live-experiment simulator (Section 5.4):
//! answer accuracy (Tables 3/4, Figs. 13/14) and price-dependent session
//! length (Fig. 15).

use ft_stats::Normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Answer accuracy model.
///
/// The paper's empirical finding is a null effect: accuracy stays ≈90%
/// across prices/group sizes (Table 3), with small per-worker
/// heterogeneity. `group_slope` lets experiments inject a mild fatigue
/// effect (the observed 92.7% → 89.5% drift across group sizes 10 → 50).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    /// Population mean accuracy at group size 10.
    pub base: f64,
    /// Accuracy decrease per additional task in a HIT (fatigue).
    pub group_slope: f64,
    /// Std-dev of the per-worker accuracy offset.
    pub worker_sd: f64,
}

impl Default for AccuracyModel {
    fn default() -> Self {
        Self {
            base: 0.925,
            group_slope: 0.0007,
            worker_sd: 0.04,
        }
    }
}

impl AccuracyModel {
    /// Draw a worker's latent accuracy offset.
    pub fn sample_worker_effect<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.worker_sd <= 0.0 {
            return 0.0;
        }
        Normal::new(0.0, self.worker_sd).sample(rng)
    }

    /// Per-answer correctness probability for a worker with the given
    /// latent effect answering within a HIT of `group_size` tasks.
    pub fn accuracy(&self, group_size: u32, worker_effect: f64) -> f64 {
        (self.base - self.group_slope * (group_size.saturating_sub(10)) as f64 + worker_effect)
            .clamp(0.05, 0.995)
    }

    /// Sample the number of correct answers in a HIT.
    pub fn sample_correct<R: Rng + ?Sized>(
        &self,
        group_size: u32,
        worker_effect: f64,
        rng: &mut R,
    ) -> u32 {
        let p = self.accuracy(group_size, worker_effect);
        (0..group_size).filter(|_| rng.gen::<f64>() < p).count() as u32
    }
}

/// Session-length model: after each completed HIT the worker continues to
/// another HIT of the same batch with probability `q(c) = c / (c + c0)`
/// where `c` is the per-task reward in cents.
///
/// This encodes the Fig. 15 observation: at low prices workers leave after
/// 1–2 HITs, at higher prices they keep going.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionModel {
    /// Half-saturation price in cents-per-task.
    pub c0: f64,
}

impl Default for SessionModel {
    fn default() -> Self {
        Self { c0: 0.15 }
    }
}

impl SessionModel {
    /// Continuation probability after each HIT.
    pub fn continuation(&self, per_task_cents: f64) -> f64 {
        assert!(per_task_cents >= 0.0, "price must be non-negative");
        (per_task_cents / (per_task_cents + self.c0)).clamp(0.0, 0.95)
    }

    /// Expected HITs per session, `1 / (1 − q)`.
    pub fn expected_hits(&self, per_task_cents: f64) -> f64 {
        1.0 / (1.0 - self.continuation(per_task_cents))
    }

    /// Sample a session length (≥ 1 HITs).
    pub fn sample_session_len<R: Rng + ?Sized>(&self, per_task_cents: f64, rng: &mut R) -> u32 {
        let q = self.continuation(per_task_cents);
        let mut n = 1u32;
        while rng.gen::<f64>() < q && n < 10_000 {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_stats::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn accuracy_decreases_with_group_size() {
        let m = AccuracyModel::default();
        let a10 = m.accuracy(10, 0.0);
        let a50 = m.accuracy(50, 0.0);
        assert!(a10 > a50);
        assert_close(a10, 0.925, 1e-12);
        assert_close(a50, 0.925 - 0.0007 * 40.0, 1e-12);
        // Stays near 90% across the whole range (the paper's null result).
        assert!(a50 > 0.88);
    }

    #[test]
    fn accuracy_clamped() {
        let m = AccuracyModel {
            base: 0.9,
            group_slope: 0.0,
            worker_sd: 0.0,
        };
        assert_close(m.accuracy(10, 10.0), 0.995, 1e-12);
        assert_close(m.accuracy(10, -10.0), 0.05, 1e-12);
    }

    #[test]
    fn sample_correct_mean() {
        let m = AccuracyModel {
            base: 0.9,
            group_slope: 0.0,
            worker_sd: 0.0,
        };
        let mut rng = seeded_rng(1);
        let trials = 20_000;
        let total: u32 = (0..trials)
            .map(|_| m.sample_correct(20, 0.0, &mut rng))
            .sum();
        assert_close(total as f64 / trials as f64, 18.0, 0.1);
    }

    #[test]
    fn session_length_grows_with_price() {
        let s = SessionModel::default();
        assert!(s.expected_hits(0.04) < s.expected_hits(0.1));
        assert!(s.expected_hits(0.1) < s.expected_hits(0.2));
        // Low price: ~1.2 HITs; high price: >2 HITs (Fig. 15 shape).
        assert!(s.expected_hits(0.04) < 1.5);
        assert!(s.expected_hits(0.2) > 2.0);
    }

    #[test]
    fn session_sampler_matches_expectation() {
        let s = SessionModel::default();
        let mut rng = seeded_rng(2);
        let trials = 50_000;
        let mean = (0..trials)
            .map(|_| s.sample_session_len(0.2, &mut rng) as u64)
            .sum::<u64>() as f64
            / trials as f64;
        assert_close(mean, s.expected_hits(0.2), 0.03);
    }

    #[test]
    fn zero_price_single_hit() {
        let s = SessionModel::default();
        assert_close(s.expected_hits(0.0), 1.0, 1e-12);
        let mut rng = seeded_rng(3);
        assert_eq!(s.sample_session_len(0.0, &mut rng), 1);
    }
}
