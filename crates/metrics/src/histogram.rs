//! A log-linear histogram with bounded relative error, mergeable across
//! per-worker shards.
//!
//! ## Bucketing
//!
//! Values are non-negative integers (nanoseconds, bytes, counts). With
//! `G = GRAIN_BITS` and `m = 2^G` sub-buckets per octave:
//!
//! - values `< m` get their own bucket (exact);
//! - a value `v ≥ m` with top bit `e` (`2^e ≤ v < 2^(e+1)`) lands in
//!   bucket `((e - G + 1) << G) + ((v >> (e - G)) - m)` — the octave
//!   `[2^e, 2^(e+1))` split into `m` equal slices of width `2^(e-G)`.
//!
//! Each bucket spans at most `width / lower_bound = 2^(e-G) / 2^e =
//! 2^-G` of its value range, so reporting the bucket **midpoint** is
//! within relative error `2^-(G+1)` of any sample in it, and any
//! quantile extracted by rank-walking the buckets is within
//! [`Histogram::REL_ERROR`] `= 2^-G` of the exact order statistic
//! (property-tested in `tests/quantile_error.rs`).
//!
//! ## Concurrency
//!
//! The record path is: compute bucket (shift/mask arithmetic), then one
//! `fetch_add` on this thread's shard bucket plus one on the shard's
//! sum — wait-free, no CAS loop, no lock. Reads merge shards by
//! summing per-bucket counts; every count is monotone, so a concurrent
//! snapshot is always a prefix of history — nothing torn, nothing
//! dropped. Values beyond [`Histogram::MAX_VALUE`] clamp into the last
//! bucket and bump `clamped` (they are *recorded*, with the clamp made
//! visible, rather than silently dropped).

use crate::{PaddedAtomicU64, SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sub-bucket resolution: `2^6 = 64` slices per octave → quantile
/// relative error ≤ 2^-6 ≈ 1.6 %.
const GRAIN_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << GRAIN_BITS;

/// Highest representable exponent: values up to `2^42` ns ≈ 73 min
/// cover any latency this workspace can see; beyond that clamps.
const MAX_EXP: u32 = 42;
const BUCKETS: usize = ((MAX_EXP - GRAIN_BITS + 1) as usize + 1) << GRAIN_BITS;

/// The quantiles every export reports.
pub const QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

struct Shard {
    buckets: Vec<AtomicU64>,
    /// Total of raw recorded values (for the mean), wrapping.
    sum: PaddedAtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: PaddedAtomicU64::default(),
        }
    }
}

/// A sharded log-linear histogram. See the module docs for the layout
/// and error bound.
pub struct Histogram {
    shards: Vec<Shard>,
    /// Samples that exceeded [`Histogram::MAX_VALUE`] and were clamped
    /// into the top bucket (still counted — never dropped).
    clamped: AtomicU64,
    /// Largest traced sample offered via
    /// [`Histogram::offer_exemplar`] (0 = none yet).
    exemplar_value: AtomicU64,
    /// Trace id of that sample — exported as `exemplar_trace_id` so a
    /// tail bucket points at an openable trace.
    exemplar_id: AtomicU64,
    /// Last merged snapshot + when it was taken, for
    /// [`Histogram::snapshot_cached`]. Never touched by the record
    /// path.
    cache: Mutex<Option<(Instant, Arc<HistogramSnapshot>)>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// `v`'s bucket index. Exact below `SUB_BUCKETS`; log-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        (((e - GRAIN_BITS + 1) as usize) << GRAIN_BITS) + (v >> (e - GRAIN_BITS)) as usize
            - SUB_BUCKETS
    }
}

/// Lower edge of bucket `i` (inverse of [`bucket_index`]).
fn bucket_lower(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let octave = (i >> GRAIN_BITS) as u32 - 1;
        let offset = (i & (SUB_BUCKETS - 1)) as u64;
        ((SUB_BUCKETS as u64) + offset) << (octave)
    }
}

/// Representative value reported for samples in bucket `i`: the bucket
/// midpoint, which halves the worst-case error vs either edge.
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lower(i);
    let width = if i < SUB_BUCKETS {
        1
    } else {
        1u64 << ((i >> GRAIN_BITS) as u32 - 1)
    };
    lo + width / 2
}

impl Histogram {
    /// Guaranteed bound on `|reported − exact| / exact` for any
    /// quantile of samples in `1..=MAX_VALUE` (the sub-`2^GRAIN_BITS`
    /// range is exact; midpoints halve this again in practice).
    pub const REL_ERROR: f64 = 1.0 / (1u64 << GRAIN_BITS) as f64;

    /// Largest value recorded without clamping.
    pub const MAX_VALUE: u64 = (1 << (MAX_EXP + 1)) - 1;

    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            clamped: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
            exemplar_id: AtomicU64::new(0),
            cache: Mutex::new(None),
        }
    }

    /// Record one sample. Wait-free; clamps above [`Self::MAX_VALUE`].
    #[inline]
    pub fn record(&self, value: u64) {
        let v = if value > Self::MAX_VALUE {
            // ORDERING: Relaxed — an independent monotone tally;
            // nothing is published through it.
            self.clamped.fetch_add(1, Ordering::Relaxed);
            Self::MAX_VALUE
        } else {
            value
        };
        let shard = &self.shards[crate::shard_index()];
        // ORDERING: Relaxed on the whole record path — each counter is
        // an independent monotone tally, nothing is published through
        // them, and `snapshot` tolerates observing the bucket increment
        // without the matching sum (the view is a valid earlier/later
        // interleaving either way). Keeping the hot path fence-free is
        // the point of the striped design.
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Offer a traced sample as this histogram's tail exemplar: the
    /// largest offered value wins and its trace id is exported as
    /// `exemplar_trace_id`. The value/id pair is two independent
    /// atomics, not one — a racing larger offer can briefly pair the
    /// previous id with the new value. Exemplars are diagnostic
    /// pointers into the trace store, not accounting, so that benign
    /// race is accepted to keep the offer wait-free-ish (one bounded
    /// CAS race per new maximum).
    pub fn offer_exemplar(&self, value: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        // ORDERING: Relaxed — max-tracking CAS on an independent
        // diagnostic cell; nothing is published through it and exports
        // tolerate any interleaving (see the benign race above).
        let mut current = self.exemplar_value.load(Ordering::Relaxed);
        while value > current {
            match self.exemplar_value.compare_exchange_weak(
                current,
                value,
                // ORDERING: Relaxed — same diagnostic cell discipline
                // on both the success and failure paths.
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // ORDERING: Relaxed — same diagnostic cell
                    // discipline as the value above.
                    self.exemplar_id.store(trace_id, Ordering::Relaxed);
                    return;
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Like [`Histogram::snapshot`], but reuse the last merged snapshot
    /// when it is younger than `ttl` — the scrape-heavy-export path.
    /// Merging walks `SHARDS × ~2800` bucket atomics per histogram;
    /// a deployer scraped by several collectors at once pays that on
    /// every hit unless snapshots are allowed to go briefly stale. A
    /// zero `ttl` always re-merges (and refreshes the cache). The
    /// record path never touches the cache — only exports race on this
    /// mutex.
    pub fn snapshot_cached(&self, ttl: Duration) -> Arc<HistogramSnapshot> {
        if ttl.is_zero() {
            // Caching off (the default): merge without touching the
            // cache mutex, so concurrent exports keep merging in
            // parallel exactly as before the cache existed.
            return Arc::new(self.snapshot());
        }
        let mut cache = self
            .cache
            .lock()
            .expect("histogram snapshot cache poisoned");
        if let Some((taken, snapshot)) = cache.as_ref() {
            if taken.elapsed() < ttl {
                return Arc::clone(snapshot);
            }
        }
        let fresh = Arc::new(self.snapshot());
        *cache = Some((Instant::now(), Arc::clone(&fresh)));
        fresh
    }

    /// Merge all shards into an immutable snapshot. Torn-free: each
    /// bucket is read once from each monotone shard counter.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (total, bucket) in counts.iter_mut().zip(&shard.buckets) {
                // ORDERING: Acquire per cell — pairs with whatever
                // synchronization made the recordings of interest
                // visible (thread join, response hand-off); against
                // still-racing Relaxed writers it only bounds
                // staleness, and monotone counters make any
                // interleaved read a coherent snapshot.
                *total += bucket.load(Ordering::Acquire);
            }
            // ORDERING: Acquire — same snapshot discipline as the
            // bucket reads above.
            sum = sum.wrapping_add(shard.sum.0.load(Ordering::Acquire));
        }
        let count: u64 = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum,
            // ORDERING: Acquire — same snapshot discipline as above.
            clamped: self.clamped.load(Ordering::Acquire),
            // ORDERING: Acquire — same snapshot discipline as above.
            exemplar_trace_id: self.exemplar_id.load(Ordering::Acquire),
        }
    }
}

/// An immutable merged view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Total samples (sum of bucket counts).
    pub count: u64,
    /// Sum of raw recorded values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Samples clamped into the top bucket.
    pub clamped: u64,
    /// Trace id of the slowest traced sample (0 = none offered).
    pub exemplar_trace_id: u64,
}

impl HistogramSnapshot {
    /// The non-empty buckets as `(index, count)` pairs — the wire form
    /// a fleet aggregator ships between nodes (see
    /// [`HistogramSnapshot::from_sparse`]). Indices are stable across
    /// processes built from the same crate: the bucketing constants are
    /// compile-time, so two nodes' histograms merge exactly.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild a snapshot from [`HistogramSnapshot::sparse_buckets`]
    /// output. Indices beyond the bucket table are rejected — they mean
    /// the peer was built with different bucketing constants, and
    /// silently clamping would corrupt every quantile.
    pub fn from_sparse(
        buckets: &[(usize, u64)],
        sum: u64,
        clamped: u64,
        exemplar_trace_id: u64,
    ) -> Result<Self, String> {
        let mut counts = vec![0u64; BUCKETS];
        for &(i, c) in buckets {
            let slot = counts
                .get_mut(i)
                .ok_or_else(|| format!("bucket index {i} out of range (max {})", BUCKETS - 1))?;
            *slot += c;
        }
        let count = counts.iter().sum();
        Ok(Self {
            counts,
            count,
            sum,
            clamped,
            exemplar_trace_id,
        })
    }

    /// Fold another snapshot into this one: bucket-exact (counts sum
    /// element-wise, so merged quantiles carry the same
    /// [`Histogram::REL_ERROR`] bound as either input), sums wrap like
    /// the shard sums do, and the exemplar keeps whichever side has one
    /// (this side wins when both do — exemplars are diagnostic
    /// pointers, not accounting).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.clamped += other.clamped;
        if self.exemplar_trace_id == 0 {
            self.exemplar_trace_id = other.exemplar_trace_id;
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the midpoint of the bucket
    /// holding the rank-`⌈q·count⌉` sample; `None` on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        unreachable!("rank {rank} not reached with count {}", self.count)
    }

    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest and largest representative values with any samples.
    pub fn range(&self) -> Option<(u64, u64)> {
        let first = self.counts.iter().position(|&c| c > 0)?;
        let last = self.counts.iter().rposition(|&c| c > 0)?;
        Some((bucket_mid(first), bucket_mid(last)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_index_and_lower_are_inverse() {
        let mut prev = usize::MAX;
        for e in 0..=MAX_EXP {
            for frac in [0u64, 1, 7, (1 << e) - 1] {
                let v = (1u64 << e) + frac.min((1 << e) - 1);
                let i = bucket_index(v);
                assert!(i < BUCKETS, "bucket {i} out of range for {v}");
                let lo = bucket_lower(i);
                assert!(lo <= v, "lower edge {lo} above value {v}");
                if i != prev {
                    prev = i;
                }
            }
        }
        // Indices are monotone in the value.
        let mut last = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1 << 40] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
    }

    #[test]
    fn midpoint_within_relative_error() {
        for v in [1u64, 64, 100, 1000, 123_456, 10_000_000, 1 << 40] {
            let mid = bucket_mid(bucket_index(v));
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            assert!(
                rel <= Histogram::REL_ERROR,
                "v={v} mid={mid} rel={rel} > {}",
                Histogram::REL_ERROR
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.clamped, 0);
        for (_, q) in QUANTILES {
            let exact = (q * 10_000.0).ceil();
            let approx = s.quantile(q).unwrap() as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(rel <= Histogram::REL_ERROR, "q={q} rel={rel}");
        }
        assert!((s.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn clamped_samples_are_counted_not_dropped() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.clamped, 1);
        assert!(s.quantile(1.0).unwrap() >= Histogram::MAX_VALUE / 2);
    }

    #[test]
    fn exemplar_keeps_slowest_traced_sample() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().exemplar_trace_id, 0);
        h.offer_exemplar(100, 0xaaaa); // first offer wins
        h.offer_exemplar(50, 0xbbbb); // smaller: ignored
        assert_eq!(h.snapshot().exemplar_trace_id, 0xaaaa);
        h.offer_exemplar(200, 0xcccc); // new maximum replaces
        assert_eq!(h.snapshot().exemplar_trace_id, 0xcccc);
        h.offer_exemplar(300, 0); // no trace id: ignored
        assert_eq!(h.snapshot().exemplar_trace_id, 0xcccc);
    }

    #[test]
    fn sparse_round_trip_and_merge_are_bucket_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=1000u64 {
            a.record(v);
        }
        for v in 500..=1500u64 {
            b.record(v);
        }
        let sa = a.snapshot();
        let sb = b.snapshot();

        // Wire round trip reproduces the snapshot exactly.
        let rebuilt =
            HistogramSnapshot::from_sparse(&sa.sparse_buckets(), sa.sum, sa.clamped, 0).unwrap();
        assert_eq!(rebuilt.count, sa.count);
        assert_eq!(rebuilt.quantile(0.5), sa.quantile(0.5));
        assert_eq!(rebuilt.quantile(0.99), sa.quantile(0.99));

        // Merging two nodes' snapshots equals one histogram that saw
        // both streams.
        let both = Histogram::new();
        for v in 1..=1000u64 {
            both.record(v);
        }
        for v in 500..=1500u64 {
            both.record(v);
        }
        let mut merged = sa.clone();
        merged.merge(&sb);
        let expect = both.snapshot();
        assert_eq!(merged.count, expect.count);
        assert_eq!(merged.sum, expect.sum);
        for (_, q) in QUANTILES {
            assert_eq!(merged.quantile(q), expect.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn from_sparse_rejects_foreign_bucket_layout() {
        assert!(HistogramSnapshot::from_sparse(&[(BUCKETS, 1)], 0, 0, 0).is_err());
        assert!(HistogramSnapshot::from_sparse(&[(usize::MAX, 1)], 0, 0, 0).is_err());
    }

    #[test]
    fn merge_keeps_an_exemplar_from_either_side() {
        let s = |ex: u64| HistogramSnapshot::from_sparse(&[(1, 1)], 1, 0, ex).unwrap();
        let mut left = s(0);
        left.merge(&s(0xbeef));
        assert_eq!(left.exemplar_trace_id, 0xbeef);
        let mut left = s(0xaaaa);
        left.merge(&s(0xbbbb));
        assert_eq!(left.exemplar_trace_id, 0xaaaa);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.range(), None);
        assert_eq!(s.mean(), 0.0);
    }
}
