//! # ft-metrics
//!
//! The workspace's observability plane: a std-only, lock-free metrics
//! library that can watch the pricing hot path without perturbing it.
//! Nothing in here takes a lock on the write side — writers touch only
//! per-shard atomics, so a `quote` that costs ~50 ns stays a
//! ~50 ns quote with its counter bumped.
//!
//! Three instrument kinds:
//!
//! - [`Counter`] — a monotonically increasing sum, sharded across
//!   cache-line-padded atomics so concurrent writers on different cores
//!   don't bounce one line (the classic "striped counter").
//! - [`Gauge`] — a single settable/adjustable signed value (queue
//!   depths, active connections).
//! - [`Histogram`] — a **log-linear** latency/value histogram: each
//!   power-of-two range is split into `2^GRAIN_BITS` equal sub-buckets,
//!   which bounds the *relative* error of any reported quantile by
//!   `2^-GRAIN_BITS` while keeping the bucket count small and the
//!   record path a shift + two atomic adds. Shards merge by summing
//!   per-bucket counts — every read is of a monotonic atomic, so merges
//!   are torn-free: a snapshot may miss in-flight increments but can
//!   never invent or lose a recorded sample (verified by the stress
//!   test in `tests/concurrency.rs`).
//!
//! [`MetricsRegistry`] names instruments and renders them two ways:
//! JSON (for `GET /metrics`) and Prometheus-style text exposition (for
//! scrapers). Metric names follow Prometheus conventions
//! (`ft_<crate>_<what>_<unit|total>`), with an optional `{label="v"}`
//! suffix treated as an opaque part of the name.

pub mod histogram;
pub mod registry;

pub use histogram::{Histogram, HistogramSnapshot, QUANTILES};
pub use registry::{histogram_snapshot_value, MetricsRegistry};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of stripes counters and histograms spread writers across.
/// A power of two so shard selection is a mask, sized for the 32-thread
/// cap `ft-exec` enforces workspace-wide.
pub const SHARDS: usize = 16;

/// An `AtomicU64` alone on its cache line, so two shards never share
/// one and striped writers scale instead of false-sharing.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomicU64(AtomicU64);

/// Pick this thread's stripe. Thread ids are dense small integers in
/// practice; a Fibonacci hash spreads consecutive ids across shards.
#[inline]
fn shard_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::hash::Hash::hash(&std::thread::current().id(), &mut h);
            let mixed = std::hash::Hasher::finish(&h).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            idx = (mixed >> (64 - SHARDS.trailing_zeros())) as usize & (SHARDS - 1);
            s.set(idx);
        }
        idx
    })
}

/// A monotonically increasing counter striped across [`SHARDS`]
/// cache-line-padded atomics. `add` is wait-free; `get` sums the
/// stripes (monotone per stripe, so a concurrent read is a valid
/// point-in-time lower bound and never tears).
pub struct Counter {
    shards: [PaddedAtomicU64; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    pub fn new() -> Self {
        Self {
            shards: Default::default(),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — the hot path publishes nothing; a stripe
        // is a pure tally and readers only need eventual inclusion, not
        // a happens-before edge per increment.
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all stripes. Concurrent with writers this is a valid
    /// snapshot of "at least everything that happened before the last
    /// stripe was read".
    pub fn get(&self) -> u64 {
        // ORDERING: Acquire per stripe so a read observes every
        // increment sequenced before whatever synchronization brought
        // the reader here (e.g. joining the writer); against the
        // Relaxed hot path it is only a freshness hint, which is all a
        // monitoring read needs.
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Acquire))
            .sum()
    }
}

/// A single settable signed value (not striped: gauges are set/adjusted
/// rarely compared to counters, and a striped gauge can't represent
/// `set`).
pub struct Gauge {
    value: AtomicI64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        // ORDERING: Release pairs with the Acquire in `get` across
        // call sites — a reader that sees the level also sees the state
        // change the writer recorded before setting it.
        self.value.store(v, Ordering::Release);
    }

    #[inline]
    pub fn inc(&self) {
        // ORDERING: AcqRel — adjustments chain with each other and
        // with `set`/`get` at other call sites, so paired inc/dec from
        // different threads can never be reordered into a net drift.
        self.value.fetch_add(1, Ordering::AcqRel);
    }

    #[inline]
    pub fn dec(&self) {
        // ORDERING: AcqRel — see `inc`.
        self.value.fetch_sub(1, Ordering::AcqRel);
    }

    pub fn get(&self) -> i64 {
        // ORDERING: Acquire pairs with the Release/AcqRel writers at
        // other call sites.
        self.value.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_inc_dec() {
        let g = Gauge::new();
        g.set(5);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let a = shard_index();
        let b = shard_index();
        assert_eq!(a, b);
        assert!(a < SHARDS);
    }
}
