//! Named metrics and the two exposition formats.
//!
//! A [`MetricsRegistry`] maps names to instruments. Hot paths resolve
//! their instruments **once** (at construction) and keep the `Arc`, so
//! the name lookup's `RwLock` is never on a serving path — it guards
//! registration and export only.
//!
//! ## Naming
//!
//! `ft_<crate>_<what>_<unit|total>`, e.g. `ft_core_quotes_total`,
//! `ft_server_request_ns{endpoint="price"}`. An optional
//! `{label="value",…}` suffix is carried opaquely: the registry sorts
//! and renders it but never parses it beyond splitting it off the base
//! name, which keeps the export Prometheus-compatible without a label
//! model on the write side.

use crate::histogram::QUANTILES;
use crate::{Counter, Gauge, Histogram};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The JSON export shape of one histogram snapshot: `{count, sum,
/// mean, clamped, exemplar_trace_id?, p50, p90, p99, p999}`, plus the
/// sparse `buckets` layer when asked. Public so a fleet aggregator can
/// re-emit a *merged* [`crate::HistogramSnapshot`] in exactly the shape
/// per-node exports use.
pub fn histogram_snapshot_value(s: &crate::HistogramSnapshot, buckets: bool) -> Value {
    let mut fields = vec![
        ("count".to_string(), Value::Num(s.count as f64)),
        ("sum".to_string(), Value::Num(s.sum as f64)),
        ("mean".to_string(), Value::Num(s.mean())),
        ("clamped".to_string(), Value::Num(s.clamped as f64)),
    ];
    if s.exemplar_trace_id != 0 {
        fields.push((
            "exemplar_trace_id".to_string(),
            Value::Str(format!("{:016x}", s.exemplar_trace_id)),
        ));
    }
    for (label, q) in QUANTILES {
        fields.push((
            label.to_string(),
            match s.quantile(q) {
                Some(v) => Value::Num(v as f64),
                None => Value::Null,
            },
        ));
    }
    if buckets {
        fields.push((
            "buckets".to_string(),
            Value::Seq(
                s.sparse_buckets()
                    .into_iter()
                    .map(|(i, c)| Value::Seq(vec![Value::Num(i as f64), Value::Num(c as f64)]))
                    .collect(),
            ),
        ));
    }
    Value::Map(fields)
}

/// A name-indexed collection of instruments with JSON and
/// Prometheus-text export.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
    /// Freshness bound for histogram quantile snapshots in exports —
    /// zero (the default) re-extracts on every hit; see
    /// [`MetricsRegistry::set_export_cache_ttl`].
    export_cache_ttl: RwLock<std::time::Duration>,
}

/// Split `name{labels}` into `(name, Some("{labels}"))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) => (&name[..i], Some(&name[i..])),
        None => (name, None),
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the staleness of histogram quantiles in exports: within
    /// `ttl` of the last export, `to_value`/`to_prometheus` reuse each
    /// histogram's merged snapshot instead of re-walking every shard
    /// bucket — what a scrape-heavy deployment wants. Counters and
    /// gauges always read live (they are single atomics; only quantile
    /// extraction is worth caching). Zero disables the cache (the
    /// default: every export is exact).
    pub fn set_export_cache_ttl(&self, ttl: std::time::Duration) {
        *self
            .export_cache_ttl
            .write()
            .expect("metrics registry poisoned") = ttl;
    }

    /// The current histogram-quantile freshness bound (zero = exports
    /// always re-extract).
    pub fn export_cache_ttl(&self) -> std::time::Duration {
        *self
            .export_cache_ttl
            .read()
            .expect("metrics registry poisoned")
    }

    /// Get or create the counter `name`. Panics if `name` is already a
    /// different instrument kind — that's a naming bug, not a runtime
    /// condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Export every instrument as a JSON object: counters/gauges as
    /// numbers, histograms as `{count, sum, mean, clamped, p50, p90,
    /// p99, p999}` (quantiles `null` while empty).
    pub fn to_value(&self) -> Value {
        self.to_value_with_buckets(false)
    }

    /// [`MetricsRegistry::to_value`] with the raw bucket layer opted in:
    /// each histogram additionally carries `"buckets": [[index, count],
    /// …]` (sparse, non-empty buckets only) — the exact counts a fleet
    /// aggregator needs to merge histograms across nodes without losing
    /// the quantile error bound (see
    /// [`crate::HistogramSnapshot::from_sparse`]). Off by default: the
    /// bucket layer is an inter-node wire format, not something human
    /// scrapes need.
    pub fn to_value_with_buckets(&self, buckets: bool) -> Value {
        let ttl = self.export_cache_ttl();
        let metrics = self.metrics.read().expect("metrics registry poisoned");
        let mut entries = Vec::with_capacity(metrics.len());
        for (name, metric) in metrics.iter() {
            let value = match metric {
                Metric::Counter(c) => Value::Num(c.get() as f64),
                Metric::Gauge(g) => Value::Num(g.get() as f64),
                Metric::Histogram(h) => histogram_snapshot_value(&h.snapshot_cached(ttl), buckets),
            };
            entries.push((name.clone(), value));
        }
        Value::Map(entries)
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as summaries (`name{quantile="0.5"}`,
    /// `name_count`, `name_sum`).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let ttl = self.export_cache_ttl();
        let metrics = self.metrics.read().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut typed: BTreeMap<&str, &'static str> = BTreeMap::new();
        for (name, metric) in metrics.iter() {
            let (base, labels) = split_labels(name);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "summary",
            };
            // One TYPE line per base name (label variants share it).
            if typed.insert(base, kind).is_none() {
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{base}{} {}", labels.unwrap_or(""), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{base}{} {}", labels.unwrap_or(""), g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot_cached(ttl);
                    // Merge the quantile label into an existing label
                    // set: `{a="b"}` + quantile → `{a="b",quantile=..}`.
                    for (_, q) in QUANTILES {
                        let qlabel = format!("quantile=\"{q}\"");
                        let labels = match labels {
                            Some(l) => format!("{{{},{qlabel}}}", &l[1..l.len() - 1]),
                            None => format!("{{{qlabel}}}"),
                        };
                        let _ = writeln!(
                            out,
                            "{base}{labels} {}",
                            s.quantile(q).map_or(f64::NAN, |v| v as f64)
                        );
                    }
                    let suffix = labels.unwrap_or("");
                    let _ = writeln!(out, "{base}_count{suffix} {}", s.count);
                    let _ = writeln!(out, "{base}_sum{suffix} {}", s.sum);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = MetricsRegistry::new();
        r.counter("a_total").add(2);
        r.counter("a_total").add(3);
        assert_eq!(r.counter("a_total").get(), 5);
        r.gauge("g").set(-7);
        assert_eq!(r.gauge("g").get(), -7);
        r.histogram("h_ns").record(100);
        assert_eq!(r.histogram("h_ns").snapshot().count, 1);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_is_a_bug() {
        let r = MetricsRegistry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn json_export_shape() {
        let r = MetricsRegistry::new();
        r.counter("reqs_total").add(4);
        r.histogram("lat_ns").record(1000);
        let v = r.to_value();
        let map = v.as_map().unwrap();
        assert_eq!(serde::map_get(map, "reqs_total").unwrap(), &Value::Num(4.0));
        let hist = serde::map_get(map, "lat_ns").unwrap().as_map().unwrap();
        assert_eq!(serde::map_get(hist, "count").unwrap(), &Value::Num(1.0));
        assert!(matches!(
            serde::map_get(hist, "p99").unwrap(),
            Value::Num(_)
        ));
        // No exemplar offered → field absent.
        assert!(serde::map_get(hist, "exemplar_trace_id").is_err());
        r.histogram("lat_ns").offer_exemplar(1000, 0xdead_beef);
        let v = r.to_value();
        let hist = serde::map_get(v.as_map().unwrap(), "lat_ns")
            .unwrap()
            .as_map()
            .unwrap();
        assert_eq!(
            serde::map_get(hist, "exemplar_trace_id").unwrap(),
            &Value::Str("00000000deadbeef".to_string())
        );
    }

    /// Satellite: with a freshness bound set, exports within the bound
    /// reuse the cached quantile snapshot (bounded staleness); past it
    /// — or with the bound at zero — they re-extract.
    #[test]
    fn export_cache_bounds_staleness() {
        use std::time::Duration;

        let r = MetricsRegistry::new();
        let h = r.histogram("lat_ns");
        h.record(100);

        // Default: no cache, every export is exact.
        assert_eq!(r.export_cache_ttl(), Duration::ZERO);
        let p50 = |v: &Value| -> f64 {
            let hist = serde::map_get(v.as_map().unwrap(), "lat_ns").unwrap();
            serde::map_get(hist.as_map().unwrap(), "p50")
                .unwrap()
                .as_num()
                .unwrap()
        };
        let fresh = p50(&r.to_value());
        h.record(1_000_000);
        h.record(1_000_000);
        assert_ne!(
            p50(&r.to_value()),
            fresh,
            "uncached export missed new samples"
        );

        // Long TTL: the first export primes the cache, later samples
        // stay invisible until the bound passes…
        r.set_export_cache_ttl(Duration::from_secs(3600));
        let primed = p50(&r.to_value());
        for _ in 0..4 {
            h.record(5_000_000_000); // enough to move the median
        }
        assert_eq!(
            p50(&r.to_value()),
            primed,
            "export within the freshness bound must serve the cached snapshot"
        );
        // …and the Prometheus export shares the same cache.
        let text = r.to_prometheus();
        assert!(text.contains(&format!("lat_ns{{quantile=\"0.5\"}} {primed}")));

        // Short TTL: once it elapses, the next export re-extracts.
        r.set_export_cache_ttl(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        assert_ne!(
            p50(&r.to_value()),
            primed,
            "export past the freshness bound must re-extract"
        );

        // Back to zero: exact again, immediately.
        r.set_export_cache_ttl(Duration::ZERO);
        h.record(7);
        let exact = r.histogram("lat_ns").snapshot();
        assert_eq!(p50(&r.to_value()), exact.quantile(0.5).unwrap() as f64);
    }

    #[test]
    fn bucket_layer_is_opt_in_and_round_trips() {
        let r = MetricsRegistry::new();
        r.histogram("lat_ns").record(100);
        r.histogram("lat_ns").record(5000);
        // Default export: no bucket layer.
        let plain = r.to_value();
        let hist = serde::map_get(plain.as_map().unwrap(), "lat_ns")
            .unwrap()
            .as_map()
            .unwrap();
        assert!(serde::map_get(hist, "buckets").is_err());
        // Opted in: sparse buckets rebuild the snapshot exactly.
        let detailed = r.to_value_with_buckets(true);
        let hist = serde::map_get(detailed.as_map().unwrap(), "lat_ns")
            .unwrap()
            .as_map()
            .unwrap();
        let buckets: Vec<(usize, u64)> = serde::map_get(hist, "buckets")
            .unwrap()
            .as_seq()
            .unwrap()
            .iter()
            .map(|pair| {
                let pair = pair.as_seq().unwrap();
                (
                    pair[0].as_num().unwrap() as usize,
                    pair[1].as_num().unwrap() as u64,
                )
            })
            .collect();
        let expect = r.histogram("lat_ns").snapshot();
        let rebuilt =
            crate::HistogramSnapshot::from_sparse(&buckets, expect.sum, expect.clamped, 0).unwrap();
        assert_eq!(rebuilt.count, expect.count);
        assert_eq!(rebuilt.quantile(0.9), expect.quantile(0.9));
    }

    #[test]
    fn prometheus_export_shape() {
        let r = MetricsRegistry::new();
        r.counter("reqs_total{endpoint=\"price\"}").add(2);
        r.counter("reqs_total{endpoint=\"solve\"}").add(1);
        r.gauge("conns").set(3);
        r.histogram("lat_ns{endpoint=\"price\"}").record(500);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"));
        // One TYPE line even with two label variants.
        assert_eq!(text.matches("# TYPE reqs_total").count(), 1);
        assert!(text.contains("reqs_total{endpoint=\"price\"} 2"));
        assert!(text.contains("reqs_total{endpoint=\"solve\"} 1"));
        assert!(text.contains("# TYPE conns gauge"));
        assert!(text.contains("conns 3"));
        assert!(text.contains("lat_ns{endpoint=\"price\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns_count{endpoint=\"price\"} 1"));
    }
}
