//! Concurrency stress: counter and histogram shards must lose no
//! increments, and snapshots merged while writers are running must be
//! internally consistent (never torn) — the bucket counts a snapshot
//! reports must sum to exactly the count it reports.

use ft_metrics::{Counter, Histogram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const INCREMENTS: u64 = 50_000;

#[test]
fn counter_loses_no_increments_under_parallel_writers() {
    let counter = Arc::new(Counter::new());
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), WRITERS as u64 * INCREMENTS);
}

#[test]
fn histogram_loses_no_samples_under_parallel_writers() {
    let histogram = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let histogram = Arc::clone(&histogram);
            s.spawn(move || {
                for i in 0..INCREMENTS {
                    // Every writer covers exact and log-linear buckets.
                    histogram.record((w as u64 + 1) * 37 + i % 4096);
                }
            });
        }
    });
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count, WRITERS as u64 * INCREMENTS);
    assert_eq!(snapshot.clamped, 0);
}

#[test]
fn concurrent_snapshots_are_never_torn() {
    // A reader merging shards while writers are mid-flight must see a
    // consistent prefix: `count` is defined as the sum of the merged
    // bucket counts, so any internal inconsistency (a torn read, a
    // dropped bucket) would show up as quantile(1.0) disagreeing with
    // the recorded value range, or a count exceeding what writers have
    // finished. We bound-check both, many times, during the run.
    let histogram = Arc::new(Histogram::new());
    // Countdown, not a flag: the snapshotter must keep racing until
    // the *last* writer finishes, or most of the contended window goes
    // unobserved.
    let remaining_writers = Arc::new(AtomicUsize::new(WRITERS));
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let histogram = Arc::clone(&histogram);
            let remaining_writers = Arc::clone(&remaining_writers);
            s.spawn(move || {
                for i in 0..INCREMENTS {
                    histogram.record(1000 + i % 100);
                }
                remaining_writers.fetch_sub(1, Ordering::Release);
            });
        }
        let histogram = Arc::clone(&histogram);
        let remaining_writers = Arc::clone(&remaining_writers);
        s.spawn(move || {
            let mut last_count = 0;
            while remaining_writers.load(Ordering::Acquire) > 0 {
                let snap = histogram.snapshot();
                // Monotone: a later snapshot never shrinks.
                assert!(snap.count >= last_count, "snapshot went backwards");
                last_count = snap.count;
                assert!(snap.count <= WRITERS as u64 * INCREMENTS);
                if let Some((lo, hi)) = snap.range() {
                    // All samples are in [1000, 1100); representative
                    // values stay within the error bound of that.
                    assert!((lo as f64) >= 1000.0 * (1.0 - Histogram::REL_ERROR));
                    assert!((hi as f64) <= 1100.0 * (1.0 + Histogram::REL_ERROR));
                }
            }
        });
    });
    let final_snapshot = histogram.snapshot();
    assert_eq!(final_snapshot.count, WRITERS as u64 * INCREMENTS);
    // sum must equal the arithmetic total of everything recorded.
    let per_writer: u64 = (0..INCREMENTS).map(|i| 1000 + i % 100).sum();
    assert_eq!(final_snapshot.sum, WRITERS as u64 * per_writer);
}
