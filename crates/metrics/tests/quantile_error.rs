//! Property test: histogram quantiles stay within the configured
//! relative-error bound against exact order statistics on random
//! samples spanning several orders of magnitude.

use ft_metrics::{Histogram, QUANTILES};
use proptest::prelude::*;

/// Exact `q`-quantile by the same rank convention the histogram uses:
/// the rank-`⌈q·n⌉` smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_relative_error_bound(
        // Log-uniform magnitudes: exercises the exact range, several
        // octaves of the log-linear range, and their boundary.
        samples in proptest::collection::vec((0.0f64..36.0, 0.0f64..1.0), 10..400),
    ) {
        let values: Vec<u64> = samples
            .iter()
            .map(|&(mag, frac)| {
                let lo = 2f64.powf(mag);
                (lo + frac * lo).round() as u64
            })
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snapshot = h.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);
        prop_assert_eq!(snapshot.clamped, 0);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (label, q) in QUANTILES {
            let exact = exact_quantile(&sorted, q);
            let approx = snapshot.quantile(q).unwrap();
            if exact == 0 {
                // The zero bucket is exact by construction.
                prop_assert_eq!(approx, 0, "{} on zero sample", label);
                continue;
            }
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(
                rel <= Histogram::REL_ERROR,
                "{}: exact {} vs approx {} (rel {:.5} > bound {:.5})",
                label, exact, approx, rel, Histogram::REL_ERROR
            );
        }
    }
}
