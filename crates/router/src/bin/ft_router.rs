//! `ft-router` — front a fleet of `ft-server` nodes.
//!
//! ```text
//! ft-router --backends 127.0.0.1:8001,127.0.0.1:8002 [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Prints `listening on HOST:PORT` once bound (the fleet scripts and
//! CI wait on that line).

use ft_router::{Router, RouterConfig};
use std::net::SocketAddr;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: ft-router --backends HOST:PORT[,HOST:PORT...] \
         [--addr HOST:PORT] [--workers N]"
    );
    exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut backends: Vec<SocketAddr> = Vec::new();
    let mut config = RouterConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--backends" => {
                let raw = value("--backends");
                for part in raw.split(',').filter(|s| !s.is_empty()) {
                    match part.parse() {
                        Ok(parsed) => backends.push(parsed),
                        Err(_) => {
                            eprintln!("bad backend address: {part}");
                            usage();
                        }
                    }
                }
            }
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => {
                    eprintln!("--workers needs a positive integer");
                    usage();
                }
            },
            _ => usage(),
        }
    }
    if backends.is_empty() {
        eprintln!("at least one --backends address is required");
        usage();
    }
    let router = match Router::bind(&addr, backends, config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            exit(1);
        }
    };
    println!("listening on {}", router.local_addr());
    if let Err(e) = router.serve() {
        eprintln!("router: {e}");
        exit(1);
    }
}
