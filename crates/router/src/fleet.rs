//! Fleet membership, campaign placement, and the snapshot-based
//! migration machinery.
//!
//! The fleet is a fixed table of backend addresses (index = stable
//! node id) plus a private `Membership` the request path reads under an
//! `RwLock`: which nodes are alive, which are draining, and the
//! consistent-hash [`Ring`] over the live set. Membership changes
//! (planned drain, unplanned failover) take the write lock for the
//! whole flip — **including the snapshot restores** — so a request
//! routed after the flip always finds its campaign on the new owner:
//! in-flight quotes wait out the flip instead of racing it to a 404.
//!
//! ## Two migration paths
//!
//! - **Planned drain** (`drain_node`): mark the node draining (the
//!   router answers mutations for its campaigns `503 draining`, quotes
//!   keep flowing), drain the backend itself (`POST /admin/drain`, so
//!   nothing can move a generation), snapshot every campaign **from
//!   node truth** at its exact generation, then flip the ring and
//!   restore each document onto its new owner. Lossless: engine state,
//!   recalibration history and generation move bit-for-bit.
//! - **Unplanned failover** (`fail_node`): on a connection failure the
//!   node is probed once; if truly dead the ring flips and the
//!   campaigns it owned are restored from the router's **snapshot
//!   cache** — the checkpoint taken at create/solve/recalibration.
//!   Observations recorded after the last checkpoint die with the
//!   node (documented at-least-once caveat); generations never tear
//!   because checkpoints are whole documents captured under the
//!   campaign's writer lock.
//!
//! Lock order: `membership` before `snapshots` — never the reverse.

use crate::ring::Ring;
use crate::telemetry::RouterTelemetry;
use ft_server::client;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

struct Membership {
    alive: Vec<bool>,
    draining: Vec<bool>,
    ring: Ring,
}

impl Membership {
    fn alive_indices(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&n| self.alive[n]).collect()
    }
}

pub struct Fleet {
    backends: Vec<SocketAddr>,
    replicas: usize,
    membership: RwLock<Membership>,
    /// Last known-good snapshot document per campaign (the failover
    /// checkpoint). Refreshed on create, solve, recalibration and
    /// drain; dropped on delete.
    snapshots: Mutex<HashMap<u64, String>>,
    next_id: AtomicU64,
    pub telemetry: RouterTelemetry,
}

impl Fleet {
    pub fn new(backends: Vec<SocketAddr>, replicas: usize) -> Self {
        assert!(!backends.is_empty(), "a fleet needs at least one backend");
        let nodes: Vec<usize> = (0..backends.len()).collect();
        let telemetry = RouterTelemetry::new();
        telemetry.nodes_alive.set(backends.len() as i64);
        Self {
            replicas,
            membership: RwLock::new(Membership {
                alive: vec![true; backends.len()],
                draining: vec![false; backends.len()],
                ring: Ring::build(&nodes, replicas),
            }),
            backends,
            snapshots: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            telemetry,
        }
    }

    pub fn backends(&self) -> &[SocketAddr] {
        &self.backends
    }

    pub fn addr(&self, node: usize) -> SocketAddr {
        self.backends[node]
    }

    /// A fresh fleet-unique campaign id (the router owns the id space;
    /// backends register under router-chosen ids).
    pub fn allocate_id(&self) -> u64 {
        // ORDERING: Relaxed — a unique-id dispenser; only atomicity
        // matters.
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Current owner of a campaign id, or `None` when no backend is
    /// routable.
    pub fn owner(&self, id: u64) -> Option<usize> {
        let m = self.membership.read().expect("membership lock poisoned");
        m.ring.route(id)
    }

    /// Owner plus its draining flag, read under one lock so the pair
    /// is consistent.
    pub fn owner_with_drain(&self, id: u64) -> Option<(usize, bool)> {
        let m = self.membership.read().expect("membership lock poisoned");
        m.ring.route(id).map(|node| (node, m.draining[node]))
    }

    /// Live nodes, as `(index, addr)` pairs.
    pub fn alive_nodes(&self) -> Vec<(usize, SocketAddr)> {
        let m = self.membership.read().expect("membership lock poisoned");
        m.alive_indices()
            .into_iter()
            .map(|n| (n, self.backends[n]))
            .collect()
    }

    /// Per-node status rows for `GET /fleet`.
    pub fn status(&self) -> Vec<(usize, SocketAddr, bool, bool)> {
        let m = self.membership.read().expect("membership lock poisoned");
        (0..self.backends.len())
            .map(|n| (n, self.backends[n], m.alive[n], m.draining[n]))
            .collect()
    }

    pub fn cache_snapshot(&self, id: u64, doc: String) {
        self.snapshots
            .lock()
            .expect("snapshot cache lock poisoned")
            .insert(id, doc);
    }

    pub fn cached(&self, id: u64) -> Option<String> {
        self.snapshots
            .lock()
            .expect("snapshot cache lock poisoned")
            .get(&id)
            .cloned()
    }

    pub fn drop_snapshot(&self, id: u64) {
        self.snapshots
            .lock()
            .expect("snapshot cache lock poisoned")
            .remove(&id);
    }

    /// Restore a campaign's cached checkpoint onto its current owner —
    /// the safety net for a backend answering 404 for a campaign the
    /// router knows (a restore that raced a crash, or a missed flip).
    /// Returns false when there is no checkpoint or no owner.
    pub fn restore_to_owner(&self, id: u64) -> bool {
        let Some(doc) = self.cached(id) else {
            return false;
        };
        let Some(node) = self.owner(id) else {
            return false;
        };
        let restored = client::request(
            self.backends[node],
            "POST",
            "/campaigns/restore",
            Some(&doc),
        )
        .map(|(status, _)| status == 200)
        .unwrap_or(false);
        if restored {
            self.telemetry.restores.inc();
        }
        restored
    }

    /// Unplanned failover: called when a proxy send to `node` failed at
    /// the transport level. Probes the node once (a refused request is
    /// not always a dead node); if it is really gone, flips the ring
    /// and restores the dead node's campaigns from the snapshot cache
    /// onto their new owners, all under the membership write lock so
    /// no request routes into the gap. Returns true when the node is
    /// (now) out of the fleet, false when the node looks healthy.
    pub fn fail_node(&self, node: usize) -> bool {
        {
            let m = self.membership.read().expect("membership lock poisoned");
            if !m.alive[node] {
                return true; // another worker already flipped
            }
        }
        if let Ok((status, _)) = client::request(self.backends[node], "GET", "/healthz", None) {
            if status == 200 {
                return false; // transient: don't evict a healthy node
            }
        }
        let _span = ft_trace::span("router.fleet.failover");
        let mut m = self.membership.write().expect("membership lock poisoned");
        if !m.alive[node] {
            return true;
        }
        let old_ring = m.ring.clone();
        m.alive[node] = false;
        m.draining[node] = false;
        m.ring = Ring::build(&m.alive_indices(), self.replicas);
        self.telemetry.failovers.inc();
        self.telemetry
            .nodes_alive
            .set(m.alive_indices().len() as i64);
        // Re-home every checkpointed campaign the dead node owned.
        // Still under the write lock: a quote for one of these ids
        // blocks on `owner()` until its campaign is on the survivor.
        let docs: Vec<(u64, String)> = {
            let snapshots = self.snapshots.lock().expect("snapshot cache lock poisoned");
            snapshots
                .iter()
                .filter(|(id, _)| old_ring.route(**id) == Some(node))
                .map(|(id, doc)| (*id, doc.clone()))
                .collect()
        };
        for (id, doc) in docs {
            let Some(new_owner) = m.ring.route(id) else {
                continue;
            };
            let ok = client::request(
                self.backends[new_owner],
                "POST",
                "/campaigns/restore",
                Some(&doc),
            )
            .map(|(status, _)| status == 200)
            .unwrap_or(false);
            if ok {
                self.telemetry.restores.inc();
            }
        }
        true
    }

    /// Planned migration: empty `node` and flip it out of the ring with
    /// zero loss. See the module docs for the phase layout. On success
    /// returns the migrated campaign ids; on failure the node is left
    /// alive and undrained, and the error is `(status, message)` for
    /// the HTTP reply.
    pub fn drain_node(&self, node: usize) -> Result<Vec<u64>, (u16, String)> {
        let _span = ft_trace::span("router.fleet.drain");
        // Phase A: mark draining — from here the router rejects
        // mutations for this node's campaigns with a retryable 503.
        {
            let mut m = self.membership.write().expect("membership lock poisoned");
            if node >= self.backends.len() || !m.alive[node] {
                return Err((404, format!("node {node} is not a live fleet member")));
            }
            if m.draining[node] {
                return Err((409, format!("node {node} is already draining")));
            }
            if m.alive_indices().len() == 1 {
                return Err((409, "cannot drain the last live node".to_string()));
            }
            m.draining[node] = true;
        }
        let addr = self.backends[node];
        let undrain = |message: String| {
            let mut m = self.membership.write().expect("membership lock poisoned");
            m.draining[node] = false;
            let _ = client::request(addr, "POST", "/admin/resume", None);
            Err((502, message))
        };
        // Phase B: drain the backend itself — nothing can move a
        // generation on this node from here on.
        match client::request(addr, "POST", "/admin/drain", None) {
            Ok((200, _)) => {}
            Ok((status, _)) => return undrain(format!("node {node} drain answered {status}")),
            Err(e) => return undrain(format!("node {node} drain failed: {e}")),
        }
        // Phase C: snapshot node truth — every campaign at its exact,
        // now-frozen generation.
        let ids = match list_node_campaigns(addr) {
            Ok(ids) => ids,
            Err(e) => return undrain(format!("node {node} census failed: {e}")),
        };
        let mut docs = Vec::with_capacity(ids.len());
        for id in ids {
            match client::request(addr, "GET", &format!("/campaigns/{id}/snapshot"), None) {
                Ok((200, doc)) => docs.push((id, doc)),
                Ok((status, _)) => {
                    return undrain(format!("node {node} snapshot of {id} answered {status}"))
                }
                Err(e) => return undrain(format!("node {node} snapshot of {id} failed: {e}")),
            }
        }
        // Phase D: flip the ring and restore onto survivors, under the
        // write lock so no request routes into the gap.
        let mut m = self.membership.write().expect("membership lock poisoned");
        m.alive[node] = false;
        m.draining[node] = false;
        m.ring = Ring::build(&m.alive_indices(), self.replicas);
        self.telemetry
            .nodes_alive
            .set(m.alive_indices().len() as i64);
        let mut moved = Vec::with_capacity(docs.len());
        let mut failed = Vec::new();
        for (id, doc) in docs {
            let Some(new_owner) = m.ring.route(id) else {
                failed.push(id);
                continue;
            };
            let ok = client::request(
                self.backends[new_owner],
                "POST",
                "/campaigns/restore",
                Some(&doc),
            )
            .map(|(status, _)| status == 200)
            .unwrap_or(false);
            if ok {
                self.telemetry.restores.inc();
                self.cache_snapshot(id, doc);
                moved.push(id);
            } else {
                failed.push(id);
            }
        }
        if !failed.is_empty() {
            return Err((
                502,
                format!("migration incomplete: campaigns {failed:?} failed to restore"),
            ));
        }
        Ok(moved)
    }
}

/// Every campaign id on one node, straight from its `GET /campaigns`.
fn list_node_campaigns(addr: SocketAddr) -> Result<Vec<u64>, String> {
    let (status, body) =
        client::request(addr, "GET", "/campaigns", None).map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("campaign index answered {status}"));
    }
    let value: serde::Value = serde_json::from_str(&body).map_err(|e| e.to_string())?;
    let fields = value.as_map().ok_or("campaign index: not an object")?;
    let campaigns = serde::map_get(fields, "campaigns")
        .map_err(|e| e.to_string())?
        .as_seq()
        .ok_or("campaign index: `campaigns` not an array")?;
    let mut ids = Vec::with_capacity(campaigns.len());
    for entry in campaigns {
        let fields = entry
            .as_map()
            .ok_or("campaign index: entry not an object")?;
        let id = serde::map_get(fields, "id")
            .ok()
            .and_then(|v| v.as_num())
            .ok_or("campaign index: entry without id")?;
        ids.push(id as u64);
    }
    Ok(ids)
}
