//! # ft-router — consistent-hash scale-out over N `ft-server` nodes
//!
//! A std-only HTTP front tier that makes a fleet of [`ft_server`]
//! backends answer like one node:
//!
//! - **Placement** ([`ring`]): campaigns live on exactly one backend,
//!   chosen by a consistent-hash ring with virtual nodes (the
//!   registry's multiplicative hash). Membership changes move only the
//!   dead node's share of the keyspace.
//! - **Membership + migration** ([`fleet`]): a planned drain freezes a
//!   node's mutations, snapshots every campaign **at its exact
//!   generation** (the v2 persistence format), restores each onto its
//!   new owner, and flips the ring — no torn generation, no lost
//!   campaign. An unplanned failover flips first and restores from the
//!   router's checkpoint cache.
//! - **Proxying + merging** ([`proxy`]): by-id routes proxy to the
//!   owner with failover retry; `GET /campaigns` and `GET /metrics`
//!   fan out to all nodes and merge (counters summed, histograms
//!   merged bucket-exact); bulk quote/observation bodies split by
//!   owner and reassemble in input order; `x-ft-trace` ids propagate
//!   end to end and `GET /trace/{id}` stitches the per-process span
//!   trees into one tree.
//! - **Serving** ([`server`]): the backend tier's blocking keep-alive
//!   loop, one backend connection set per worker thread.
//!
//! The router adds two routes of its own: `GET /fleet` (membership
//! rows) and `POST /fleet/drain?node=N` (planned migration). Node
//! admin routes (`/admin/drain`, `/campaigns/restore`) are refused at
//! the router — the fleet owns that choreography.

pub mod fleet;
pub mod proxy;
pub mod ring;
pub mod server;
pub mod telemetry;

pub use fleet::Fleet;
pub use ring::{Ring, DEFAULT_REPLICAS};
pub use server::{Router, RouterConfig, RouterHandle};
