//! Routes one HTTP request across the fleet.
//!
//! Three request shapes:
//!
//! - **Placed** (`/campaigns/{id}/...`, `POST /campaigns`): the
//!   consistent-hash ring names the owning node; the request proxies
//!   there verbatim (create requests get a router-allocated `id`
//!   injected so the id space stays fleet-wide). A transport failure
//!   triggers [`Fleet::fail_node`] and the request re-routes; a 404
//!   for a campaign the router has checkpointed triggers a
//!   restore-and-retry instead of leaking the miss.
//! - **Fanned** (`GET /campaigns`, `GET /metrics`, `GET /trace/{id}`):
//!   every live node answers and the router merges — campaign indexes
//!   by id, metrics by summing counters and merging histogram bucket
//!   layers exactly ([`ft_metrics::HistogramSnapshot::merge`]), traces
//!   by stitching per-process span trees
//!   ([`ft_trace::merge_documents`]).
//! - **Split** (`POST /campaigns/quotes`, `/campaigns/observations`):
//!   the bulk body is split by owner, one sub-request per node, and
//!   the per-item results are reassembled **in input order**, inline
//!   errors intact, so a client cannot tell the fleet from one node.

use crate::fleet::Fleet;
use crate::telemetry::RouterTelemetry;
use ft_metrics::{histogram_snapshot_value, HistogramSnapshot};
use ft_server::http::{Request, Response};
use ft_server::{Client, Endpoint};
use serde::{map_get, Value};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Mirror of the serving tier's bulk cap: the router enforces it
/// before splitting so an oversized batch fails identically on fleet
/// and single node.
const MAX_BULK_ITEMS: usize = 1024;

/// Re-route attempts for a placed request before giving up. Two
/// failovers mid-request is already a catastrophic fleet; the bound
/// exists so a dead fleet answers 503 instead of spinning.
const MAX_ROUTE_ATTEMPTS: usize = 3;

/// One keep-alive connection per backend, owned by a single worker
/// thread (the [`Client`] reconnects transparently after idle
/// timeouts and node restarts).
pub struct Connections {
    clients: Vec<Client>,
}

impl Connections {
    pub fn new(backends: &[std::net::SocketAddr]) -> Self {
        Self {
            clients: backends.iter().map(|&addr| Client::new(addr)).collect(),
        }
    }

    fn request(
        &mut self,
        node: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
        trace: Option<u64>,
    ) -> std::io::Result<(u16, String)> {
        let _span = ft_trace::span("router.backend.proxy");
        self.clients[node]
            .request_traced(method, path, body, trace)
            .map(|(status, body, _)| (status, body))
    }
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn json(status: u16, body: Value) -> Response {
    Response::json(
        status,
        serde_json::to_string(&body).expect("serialize response"),
    )
}

fn error_response(status: u16, kind: &str, message: &str) -> Response {
    json(
        status,
        map(vec![
            ("error", Value::Str(kind.into())),
            ("message", Value::Str(message.into())),
        ]),
    )
}

fn bad_request(message: &str) -> Response {
    error_response(400, "bad_request", message)
}

/// The retryable 503 a client sees while a drain window or a dead
/// fleet is in the way.
fn unavailable(fleet: &Fleet, message: &str) -> Response {
    fleet.telemetry.rejects.inc();
    error_response(503, "fleet_unavailable", message)
}

/// Rebuild the backend-facing request target from the parsed path and
/// query (the codec percent-decodes on parse; re-encode on proxy).
fn path_with_query(request: &Request) -> String {
    let mut target = request.path.clone();
    for (i, (k, v)) in request.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        percent_encode(&mut target, k);
        if !v.is_empty() {
            target.push('=');
            percent_encode(&mut target, v);
        }
    }
    target
}

fn percent_encode(out: &mut String, s: &str) {
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
}

/// Route one request. Mirrors the serving tier's `handle`: one root
/// span, one classification, one metrics record on the way out.
pub fn handle(fleet: &Fleet, conns: &mut Connections, request: &Request) -> Response {
    let started = std::time::Instant::now();
    let root = ft_trace::begin_at(
        request.trace.unwrap_or(0),
        "router.request.serve",
        ft_trace::now_ns(),
    );
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let (slot, mut response) = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["fleet"]) => (
            RouterTelemetry::fleet_slot("fleet_status"),
            fleet_status(fleet),
        ),
        ("POST", ["fleet", "drain"]) => (
            RouterTelemetry::fleet_slot("fleet_drain"),
            fleet_drain(fleet, request),
        ),
        _ => {
            let endpoint = Endpoint::classify(request);
            ft_trace::set_current_op(endpoint.label());
            (
                RouterTelemetry::slot(endpoint),
                dispatch(fleet, conns, endpoint, request),
            )
        }
    };
    let trace_id = ft_trace::current_trace_id();
    fleet
        .telemetry
        .record(slot, response.status, started.elapsed(), trace_id);
    response.trace = request.trace.or(trace_id);
    drop(root);
    response
}

fn dispatch(
    fleet: &Fleet,
    conns: &mut Connections,
    endpoint: Endpoint,
    request: &Request,
) -> Response {
    match endpoint {
        Endpoint::Healthz => healthz(fleet),
        Endpoint::Metrics => merged_metrics(fleet, conns, request),
        Endpoint::CampaignsIndex => merged_campaigns(fleet, conns, request),
        Endpoint::CampaignCreate => create_campaign(fleet, conns, request),
        Endpoint::CampaignReport | Endpoint::CampaignPrice | Endpoint::CampaignSnapshot => {
            placed(fleet, conns, request, false)
        }
        Endpoint::CampaignSolve | Endpoint::CampaignObserve | Endpoint::CampaignDelete => {
            placed(fleet, conns, request, true)
        }
        Endpoint::CampaignsQuotes => bulk(fleet, conns, request, "quotes", false),
        Endpoint::CampaignsObserve => bulk(fleet, conns, request, "observations", true),
        Endpoint::TraceRecent => {
            let limit = match request.query("limit") {
                None => Ok(32),
                Some(raw) => raw.parse::<usize>().map_err(|_| ()),
            };
            match limit {
                Ok(limit) => Response::json(200, ft_trace::recent_json(limit)),
                Err(()) => bad_request("`limit` must be a non-negative integer"),
            }
        }
        Endpoint::TraceGet => merged_trace(fleet, conns, request),
        Endpoint::TraceExport => Response::json(200, ft_trace::export_chrome_json()),
        Endpoint::CampaignsRestore => {
            bad_request("restore is a node-level operation; POST it to a backend, not the router")
        }
        Endpoint::AdminDrain | Endpoint::AdminResume => {
            bad_request("node drain is fleet-managed here; use POST /fleet/drain?node=N")
        }
        Endpoint::Other => error_response(404, "not_found", "unknown route"),
    }
}

/// `GET /healthz` — fleet liveness: how many nodes are routable.
fn healthz(fleet: &Fleet) -> Response {
    let status = fleet.status();
    let alive = status.iter().filter(|(_, _, a, _)| *a).count();
    json(
        200,
        map(vec![
            (
                "status",
                Value::Str(
                    if alive == status.len() {
                        "ok"
                    } else {
                        "degraded"
                    }
                    .into(),
                ),
            ),
            ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
            ("nodes_total", Value::Num(status.len() as f64)),
            ("nodes_alive", Value::Num(alive as f64)),
        ]),
    )
}

/// `GET /fleet` — per-node membership rows.
fn fleet_status(fleet: &Fleet) -> Response {
    let nodes: Vec<Value> = fleet
        .status()
        .into_iter()
        .map(|(node, addr, alive, draining)| {
            map(vec![
                ("node", Value::Num(node as f64)),
                ("addr", Value::Str(addr.to_string())),
                ("alive", Value::Bool(alive)),
                ("draining", Value::Bool(draining)),
            ])
        })
        .collect();
    json(200, map(vec![("nodes", Value::Seq(nodes))]))
}

/// `POST /fleet/drain?node=N` — planned migration off one node.
fn fleet_drain(fleet: &Fleet, request: &Request) -> Response {
    let Some(node) = request.query("node").and_then(|v| v.parse::<usize>().ok()) else {
        return bad_request("`node` must be a fleet node index");
    };
    match fleet.drain_node(node) {
        Ok(moved) => json(
            200,
            map(vec![
                ("node", Value::Num(node as f64)),
                ("moved", Value::Num(moved.len() as f64)),
                (
                    "ids",
                    Value::Seq(moved.into_iter().map(|id| Value::Num(id as f64)).collect()),
                ),
            ]),
        ),
        Err((status, message)) => error_response(status, "drain_failed", &message),
    }
}

/// Proxy a `/campaigns/{id}...` request to its owner, failing over and
/// restore-retrying as needed. `mutating` requests are refused with a
/// retryable 503 while the owner is draining (the migration is
/// freezing its generation).
fn placed(fleet: &Fleet, conns: &mut Connections, request: &Request, mutating: bool) -> Response {
    let raw = request
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .nth(1)
        .unwrap_or("");
    let Ok(id) = raw.parse::<u64>() else {
        return bad_request("campaign id must be an integer");
    };
    let target = path_with_query(request);
    let body = (!request.body.is_empty()).then_some(request.body.as_str());
    let response = placed_by_id(
        fleet,
        conns,
        id,
        &request.method,
        &target,
        body,
        request,
        mutating,
    );
    if let Some(response) = &response {
        maintain_cache(fleet, conns, id, request, mutating, response);
    }
    response.unwrap_or_else(|| unavailable(fleet, "no backend could serve the request"))
}

/// The failover loop shared by every placed request. `None` means the
/// fleet is exhausted.
#[allow(clippy::too_many_arguments)]
fn placed_by_id(
    fleet: &Fleet,
    conns: &mut Connections,
    id: u64,
    method: &str,
    target: &str,
    body: Option<&str>,
    request: &Request,
    mutating: bool,
) -> Option<Response> {
    let mut restored = false;
    for attempt in 0..MAX_ROUTE_ATTEMPTS {
        let (node, draining) = fleet.owner_with_drain(id)?;
        if mutating && draining {
            fleet.telemetry.rejects.inc();
            return Some(error_response(
                503,
                "draining",
                "campaign is migrating; retry shortly",
            ));
        }
        match conns.request(node, method, target, body, request.trace) {
            // A 404 for a campaign the router has checkpointed is a
            // migration gap, not a missing campaign: put the
            // checkpoint back and retry once.
            Ok((404, _)) if !restored && fleet.cached(id).is_some() => {
                restored = true;
                if !fleet.restore_to_owner(id) {
                    continue;
                }
                fleet.telemetry.retries.inc();
            }
            Ok((status, body)) => return Some(Response::json(status, body)),
            Err(_) => {
                fleet.fail_node(node);
                if attempt + 1 < MAX_ROUTE_ATTEMPTS {
                    fleet.telemetry.retries.inc();
                }
            }
        }
    }
    None
}

/// Keep the failover checkpoint fresh after successful mutations:
/// create and solve always re-checkpoint, observations only when they
/// recalibrated (a new generation was published), deletes drop the
/// checkpoint.
fn maintain_cache(
    fleet: &Fleet,
    conns: &mut Connections,
    id: u64,
    request: &Request,
    mutating: bool,
    response: &Response,
) {
    if !mutating || !(200..300).contains(&response.status) {
        return;
    }
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("DELETE", _) => fleet.drop_snapshot(id),
        ("POST", [_, _, "solve"]) => refresh_snapshot(fleet, conns, id),
        ("POST", [_, _, "observations"]) if response.body.contains("\"recalibrated\":true") => {
            refresh_snapshot(fleet, conns, id);
        }
        _ => {}
    }
}

/// Pull a fresh checkpoint for `id` from its current owner. Best
/// effort: a failed refresh leaves the previous checkpoint in place.
fn refresh_snapshot(fleet: &Fleet, conns: &mut Connections, id: u64) {
    let Some(node) = fleet.owner(id) else {
        return;
    };
    if let Ok((200, doc)) = conns.request(
        node,
        "GET",
        &format!("/campaigns/{id}/snapshot"),
        None,
        None,
    ) {
        fleet.cache_snapshot(id, doc);
    }
}

/// `POST /campaigns` — allocate a fleet-wide id, inject it into the
/// spec, place by ring, checkpoint the newborn draft.
fn create_campaign(fleet: &Fleet, conns: &mut Connections, request: &Request) -> Response {
    let Ok(parsed) = serde_json::from_str::<Value>(&request.body) else {
        return bad_request("invalid JSON body");
    };
    let Value::Map(mut entries) = parsed else {
        return bad_request("campaign spec must be a JSON object");
    };
    if entries.iter().any(|(k, _)| k == "id") {
        return bad_request("the router assigns campaign ids; omit `id`");
    }
    let id = fleet.allocate_id();
    entries.push(("id".to_string(), Value::Num(id as f64)));
    let body = serde_json::to_string(&Value::Map(entries)).expect("serialize spec");
    let response = placed_by_id(
        fleet,
        conns,
        id,
        "POST",
        "/campaigns",
        Some(&body),
        request,
        true,
    );
    let Some(response) = response else {
        return unavailable(fleet, "no backend could accept the campaign");
    };
    if response.status == 201 {
        refresh_snapshot(fleet, conns, id);
    }
    response
}

/// `GET /campaigns` fan-out: every live node's index, deduped by id,
/// sorted ascending, then paginated at the router so the fleet answers
/// exactly like one node.
fn merged_campaigns(fleet: &Fleet, conns: &mut Connections, request: &Request) -> Response {
    let limit = match request.query("limit") {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(limit) => Some(limit),
            Err(_) => return bad_request("`limit` must be a non-negative integer"),
        },
    };
    let offset = match request.query("offset") {
        None => 0,
        Some(raw) => match raw.parse::<usize>() {
            Ok(offset) => offset,
            Err(_) => return bad_request("`offset` must be a non-negative integer"),
        },
    };
    let _span = ft_trace::span("router.fleet.merge");
    // One failover restart: a node dying mid-sweep flips the ring and
    // the sweep re-reads the survivors (which now hold its campaigns).
    'sweep: for _ in 0..2 {
        let mut by_id: HashMap<u64, Value> = HashMap::new();
        for (node, _) in fleet.alive_nodes() {
            let body = match conns.request(node, "GET", "/campaigns", None, request.trace) {
                Ok((200, body)) => body,
                Ok((status, _)) => {
                    return error_response(
                        502,
                        "bad_gateway",
                        &format!("node {node} campaign index answered {status}"),
                    )
                }
                Err(_) => {
                    fleet.fail_node(node);
                    continue 'sweep;
                }
            };
            let Ok(value) = serde_json::from_str::<Value>(&body) else {
                return error_response(502, "bad_gateway", "unparseable campaign index");
            };
            let Some(fields) = value.as_map() else {
                return error_response(502, "bad_gateway", "campaign index: not an object");
            };
            let Some(campaigns) = map_get(fields, "campaigns").ok().and_then(|v| v.as_seq()) else {
                return error_response(502, "bad_gateway", "campaign index: no campaigns");
            };
            for entry in campaigns {
                let id = entry
                    .as_map()
                    .and_then(|f| map_get(f, "id").ok())
                    .and_then(|v| v.as_num());
                if let Some(id) = id {
                    by_id.insert(id as u64, entry.clone());
                }
            }
        }
        let mut ids: Vec<u64> = by_id.keys().copied().collect();
        ids.sort_unstable();
        let total = ids.len();
        let page: Vec<Value> = ids
            .iter()
            .skip(offset)
            .take(limit.unwrap_or(total))
            .map(|id| by_id[id].clone())
            .collect();
        return json(
            200,
            map(vec![
                ("total", Value::Num(total as f64)),
                ("offset", Value::Num(offset as f64)),
                ("returned", Value::Num(page.len() as f64)),
                ("campaigns", Value::Seq(page)),
            ]),
        );
    }
    unavailable(fleet, "fleet sweep kept losing nodes")
}

/// `GET /metrics` fan-out: counters and gauges sum, histograms merge
/// **bucket-exact** through the sparse bucket layer every node exports
/// (`?buckets=1` on the fan-out, opt-in on the merged output), and the
/// router's own `ft_router_*` plane is overlaid (names are disjoint by
/// the metric grammar). Prometheus text is a node-level format — the
/// router says so instead of mangling it.
fn merged_metrics(fleet: &Fleet, conns: &mut Connections, request: &Request) -> Response {
    match request.query("format") {
        None | Some("json") => {}
        Some(other) => {
            return bad_request(&format!(
                "merged fleet metrics are JSON-only (got format `{other}`); \
                 scrape nodes directly for prometheus text"
            ))
        }
    }
    let want_buckets = matches!(request.query("buckets"), Some("1") | Some("true"));
    let _span = ft_trace::span("router.fleet.merge");
    'sweep: for _ in 0..2 {
        let mut merged: Vec<(String, Merged)> = Vec::new();
        for (node, _) in fleet.alive_nodes() {
            let body = match conns.request(node, "GET", "/metrics?buckets=1", None, request.trace) {
                Ok((200, body)) => body,
                Ok((status, _)) => {
                    return error_response(
                        502,
                        "bad_gateway",
                        &format!("node {node} metrics answered {status}"),
                    )
                }
                Err(_) => {
                    fleet.fail_node(node);
                    continue 'sweep;
                }
            };
            let Ok(Value::Map(entries)) = serde_json::from_str::<Value>(&body) else {
                return error_response(502, "bad_gateway", "unparseable node metrics");
            };
            for (name, value) in entries {
                match merge_metric(&mut merged, &name, &value) {
                    Ok(()) => {}
                    Err(e) => {
                        return error_response(
                            502,
                            "bad_gateway",
                            &format!("node {node} metric `{name}`: {e}"),
                        )
                    }
                }
            }
        }
        let mut out: Vec<(String, Value)> = merged
            .into_iter()
            .map(|(name, m)| {
                let value = match m {
                    Merged::Num(n) => Value::Num(n),
                    Merged::Hist(s) => histogram_snapshot_value(&s, want_buckets),
                };
                (name, value)
            })
            .collect();
        // The router's own plane rides along under its own names.
        if let Value::Map(own) = fleet
            .telemetry
            .registry()
            .to_value_with_buckets(want_buckets)
        {
            out.extend(own);
        }
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        return json(200, Value::Map(out));
    }
    unavailable(fleet, "fleet sweep kept losing nodes")
}

/// One metric mid-merge: scalars (counters, gauges) sum; histograms
/// accumulate bucket-exact through [`HistogramSnapshot::merge`].
enum Merged {
    Num(f64),
    Hist(HistogramSnapshot),
}

/// Fold one node's exported metric into the merge accumulator. The
/// accumulator stays a `Vec` (not a map) so first-seen order survives
/// until the final sort — and N stays small (hundreds of names).
fn merge_metric(
    merged: &mut Vec<(String, Merged)>,
    name: &str,
    value: &Value,
) -> Result<(), String> {
    let incoming = match value {
        Value::Num(n) => Merged::Num(*n),
        Value::Map(fields) => Merged::Hist(parse_histogram(fields)?),
        _ => return Err("neither a number nor a histogram object".into()),
    };
    match merged.iter_mut().find(|(n, _)| n == name) {
        None => merged.push((name.to_string(), incoming)),
        Some((_, existing)) => match (existing, incoming) {
            (Merged::Num(a), Merged::Num(b)) => *a += b,
            (Merged::Hist(a), Merged::Hist(b)) => a.merge(&b),
            _ => return Err("instrument type disagrees across nodes".into()),
        },
    }
    Ok(())
}

/// Reconstruct a [`HistogramSnapshot`] from the node export shape
/// (requires the sparse `buckets` layer — the fan-out always asks for
/// it with `?buckets=1`).
fn parse_histogram(fields: &[(String, Value)]) -> Result<HistogramSnapshot, String> {
    let num = |key: &str| -> Result<u64, String> {
        map_get(fields, key)
            .ok()
            .and_then(Value::as_num)
            .filter(|n| *n >= 0.0)
            .map(|n| n as u64)
            .ok_or_else(|| format!("missing numeric `{key}`"))
    };
    let sum = num("sum")?;
    let clamped = num("clamped")?;
    let exemplar = match map_get(fields, "exemplar_trace_id") {
        Ok(Value::Str(s)) => {
            u64::from_str_radix(s, 16).map_err(|_| "bad exemplar trace id".to_string())?
        }
        _ => 0,
    };
    let raw = map_get(fields, "buckets")
        .ok()
        .and_then(|v| v.as_seq())
        .ok_or("histogram export without its `buckets` layer")?;
    let mut buckets = Vec::with_capacity(raw.len());
    for pair in raw {
        let pair = pair
            .as_seq()
            .filter(|p| p.len() == 2)
            .ok_or("bucket entry not a pair")?;
        let index = pair[0]
            .as_num()
            .filter(|n| *n >= 0.0)
            .ok_or("bad bucket index")?;
        let count = pair[1]
            .as_num()
            .filter(|n| *n >= 0.0)
            .ok_or("bad bucket count")?;
        buckets.push((index as usize, count as u64));
    }
    HistogramSnapshot::from_sparse(&buckets, sum, clamped, exemplar)
}

/// `GET /trace/{id}` fan-out: the router's own segment (root) plus
/// every node's, stitched into one tree.
fn merged_trace(fleet: &Fleet, conns: &mut Connections, request: &Request) -> Response {
    let raw = request
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .nth(1)
        .unwrap_or("");
    let Some(id) = ft_trace::parse_trace_id(raw) else {
        return bad_request("trace id must be 1-16 hex digits");
    };
    let _span = ft_trace::span("router.fleet.merge");
    let local = ft_trace::find_json(id);
    let mut remotes = Vec::new();
    for (node, _) in fleet.alive_nodes() {
        if let Ok((200, body)) = conns.request(node, "GET", &format!("/trace/{raw}"), None, None) {
            remotes.push(body);
        }
    }
    let (base, rest) = match (local, remotes.is_empty()) {
        (Some(local), _) => (local, remotes),
        (None, false) => {
            let mut it = remotes.into_iter();
            (it.next().expect("non-empty"), it.collect())
        }
        (None, true) => {
            return error_response(
                404,
                "not_found",
                "trace not stored on any fleet node (evicted or never sampled)",
            )
        }
    };
    match ft_trace::merge_documents(&base, &rest) {
        Ok(doc) => Response::json(200, doc),
        Err(e) => error_response(502, "bad_gateway", &format!("trace merge failed: {e}")),
    }
}

/// Split a bulk body by owning node, proxy each slice, reassemble the
/// per-item results in input order. `refresh` re-checkpoints items
/// whose observation recalibrated.
fn bulk(
    fleet: &Fleet,
    conns: &mut Connections,
    request: &Request,
    key: &str,
    refresh: bool,
) -> Response {
    let Ok(parsed) = serde_json::from_str::<Value>(&request.body) else {
        return bad_request("invalid JSON body");
    };
    let Some(fields) = parsed.as_map() else {
        return bad_request("bulk request must be a JSON object");
    };
    let Some(items) = map_get(fields, key).ok().and_then(|v| v.as_seq()) else {
        return bad_request(&format!("missing `{key}` array"));
    };
    if items.len() > MAX_BULK_ITEMS {
        return bad_request(&format!(
            "`{key}` has {} items (max {MAX_BULK_ITEMS})",
            items.len()
        ));
    }
    // Every item needs a well-formed id before it can be placed.
    let mut ids = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let id = item
            .as_map()
            .and_then(|f| map_get(f, "id").ok())
            .and_then(|v| v.as_num())
            .filter(|n| *n >= 0.0 && n.fract() == 0.0);
        match id {
            Some(id) => ids.push(id as u64),
            None => {
                return bad_request(&format!("item {index}: missing or invalid `id`"));
            }
        }
    }
    let mut slots: Vec<Option<Value>> = vec![None; items.len()];
    // Two placement passes: unresolved items (owner died mid-flight)
    // regroup onto the post-failover ring once.
    for _pass in 0..2 {
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (index, id) in ids.iter().enumerate() {
            if slots[index].is_some() {
                continue;
            }
            let Some(node) = fleet.owner(*id) else {
                return unavailable(fleet, "no backends alive");
            };
            groups.entry(node).or_default().push(index);
        }
        if groups.is_empty() {
            break;
        }
        let mut group_order: Vec<usize> = groups.keys().copied().collect();
        group_order.sort_unstable();
        for node in group_order {
            let indices = &groups[&node];
            let slice: Vec<Value> = indices.iter().map(|&i| items[i].clone()).collect();
            let body =
                serde_json::to_string(&Value::Map(vec![(key.to_string(), Value::Seq(slice))]))
                    .expect("serialize bulk slice");
            match conns.request(
                node,
                "POST",
                &format!("/campaigns/{key}"),
                Some(&body),
                request.trace,
            ) {
                Ok((200, body)) => {
                    let results = serde_json::from_str::<Value>(&body).ok().and_then(|v| {
                        v.as_map().and_then(|f| {
                            map_get(f, "results")
                                .ok()
                                .and_then(|r| r.as_seq().map(|s| s.to_vec()))
                        })
                    });
                    let Some(results) = results else {
                        return error_response(502, "bad_gateway", "unparseable bulk reply");
                    };
                    if results.len() != indices.len() {
                        return error_response(502, "bad_gateway", "bulk reply wrong length");
                    }
                    for (&index, result) in indices.iter().zip(results) {
                        slots[index] = Some(result);
                    }
                }
                // A request-level (structural) 400 from the slice:
                // remap the slice-local item index back to the
                // client's and fail the whole request, exactly like a
                // single node would.
                Ok((400, body)) => {
                    return Response::json(400, remap_bulk_error(&body, indices));
                }
                Ok((status, body)) => return Response::json(status, body),
                Err(_) => {
                    // Owner died: flip and let the next pass regroup
                    // this slice onto the survivors.
                    fleet.fail_node(node);
                    fleet.telemetry.retries.inc();
                }
            }
        }
    }
    // Anything still unplaced after the retry pass answers inline, so
    // sibling items' results survive a mid-batch failover.
    let results: Vec<Value> = slots
        .into_iter()
        .zip(&ids)
        .map(|(slot, &id)| {
            slot.unwrap_or_else(|| {
                map(vec![
                    ("id", Value::Num(id as f64)),
                    ("error", Value::Str("node_unavailable".into())),
                    (
                        "message",
                        Value::Str("owning node failed mid-batch; retry".into()),
                    ),
                    ("status", Value::Num(503.0)),
                ])
            })
        })
        .collect();
    if refresh {
        let recalibrated: Vec<u64> = results
            .iter()
            .filter_map(|r| {
                let fields = r.as_map()?;
                let recal = matches!(map_get(fields, "recalibrated"), Ok(Value::Bool(true)));
                recal
                    .then(|| map_get(fields, "id").ok().and_then(|v| v.as_num()))
                    .flatten()
            })
            .map(|id| id as u64)
            .collect();
        for id in recalibrated {
            refresh_snapshot(fleet, conns, id);
        }
    }
    json(
        200,
        map(vec![
            ("count", Value::Num(results.len() as f64)),
            ("results", Value::Seq(results)),
        ]),
    )
}

/// Rewrite a backend's structural bulk 400 (`item {j}: ...`, indices
/// local to the proxied slice) so it names the client's original item
/// index.
fn remap_bulk_error(body: &str, indices: &[usize]) -> String {
    let Ok(Value::Map(entries)) = serde_json::from_str::<Value>(body) else {
        return body.to_string();
    };
    let rewritten: Vec<(String, Value)> = entries
        .into_iter()
        .map(|(k, v)| {
            if k == "message" {
                if let Value::Str(message) = &v {
                    if let Some(rest) = message.strip_prefix("item ") {
                        if let Some((n, tail)) = rest.split_once(':') {
                            if let Ok(local) = n.parse::<usize>() {
                                if let Some(&original) = indices.get(local) {
                                    return (k, Value::Str(format!("item {original}:{tail}")));
                                }
                            }
                        }
                    }
                }
            }
            (k, v)
        })
        .collect();
    serde_json::to_string(&Value::Map(rewritten)).unwrap_or_else(|_| body.to_string())
}
