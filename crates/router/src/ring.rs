//! A consistent-hash ring with virtual nodes.
//!
//! Campaigns are placed on backends by hashing the campaign id onto a
//! ring of `replicas` virtual points per node and walking clockwise to
//! the first point. The payoff over `id % N` is **stability**: removing
//! a node reassigns only the keys that node owned (each to the next
//! point clockwise, spread across survivors by the virtual points), and
//! adding a node steals only ~`1/N` of the keyspace. The hash is the
//! same multiplicative mix the registry's sharded store uses for its
//! shard index — one hashing idiom across the codebase.

/// Virtual points per node. More points smooth the per-node share at
/// the cost of a bigger (still tiny) sorted table: at 64 points the
/// max/min node share ratio stays within ~2x for small fleets, and
/// removal scatters a dead node's keys across every survivor instead
/// of dumping them on one neighbour.
pub const DEFAULT_REPLICAS: usize = 64;

/// Fibonacci multiplicative mix (the registry's shard hash): spreads
/// sequential ids across the ring; the high 32 bits are the ring
/// position.
fn mix(x: u64) -> u32 {
    (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
}

/// Position of virtual point `replica` of `node`: two multiplicative
/// rounds with an xor-fold between them. One round would make node 0's
/// points `mix(1..=replicas)` — the exact key positions of the first
/// `replicas` sequential campaign ids — parking every early campaign
/// on node 0. The extra round keeps the point set and the key hash
/// decorrelated.
fn point(node: usize, replica: usize) -> u32 {
    let x = ((node as u64) << 32) | (replica as u64 + 1);
    let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h ^ (h >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
}

/// An immutable ring over a set of node indices. Rebuilt (cheaply) on
/// membership change; the node index is the caller's stable backend
/// table index, so the same node set always builds the same ring.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(position, node)` sorted by position (ties broken by node, so
    /// construction order never matters).
    points: Vec<(u32, usize)>,
}

impl Ring {
    /// Build a ring over `nodes` (stable indices into the caller's
    /// backend table) with `replicas` virtual points each.
    pub fn build(nodes: &[usize], replicas: usize) -> Self {
        let mut points = Vec::with_capacity(nodes.len() * replicas);
        for &node in nodes {
            for replica in 0..replicas {
                points.push((point(node, replica), node));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The node owning `id`: the first virtual point clockwise from the
    /// id's ring position. `None` on an empty ring.
    pub fn route(&self, id: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let pos = mix(id);
        let at = self.points.partition_point(|&(p, _)| p < pos);
        let (_, node) = self.points[at % self.points.len()];
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_deterministic_and_covering() {
        let ring = Ring::build(&[0, 1, 2], DEFAULT_REPLICAS);
        let mut seen = [0usize; 3];
        for id in 1..=3000u64 {
            let node = ring.route(id).unwrap();
            assert_eq!(ring.route(id).unwrap(), node);
            seen[node] += 1;
        }
        // Every node owns a real share (virtual points smooth the split).
        for (node, &count) in seen.iter().enumerate() {
            assert!(count > 300, "node {node} owns only {count}/3000 keys");
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        assert_eq!(Ring::build(&[], DEFAULT_REPLICAS).route(7), None);
        assert!(Ring::build(&[], DEFAULT_REPLICAS).is_empty());
    }
}
