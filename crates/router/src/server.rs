//! The router's serving loop.
//!
//! Same shape as the backend tier's blocking server, sized for a front
//! tier: a small pool of acceptor/worker threads share the listener
//! (`accept` is thread-safe on every platform we target), and each
//! worker owns one keep-alive [`Connections`] set to the backends —
//! so backend connection state is per-thread and needs no locking.
//! Shutdown is the codebase's poke idiom: flip an `AtomicBool`, then
//! connect once per worker so every blocked `accept` call returns.

use crate::fleet::Fleet;
use crate::proxy::{self, Connections};
use ft_server::http::{read_request, write_response, Response};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Acceptor/worker threads. Each holds one keep-alive connection
    /// per backend, so the fleet sees at most `workers × nodes`
    /// proxy connections.
    pub workers: usize,
    /// Virtual points per node on the placement ring.
    pub replicas: usize,
    /// Idle client connections are dropped after this long.
    pub keep_alive_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            workers: 16,
            replicas: crate::ring::DEFAULT_REPLICAS,
            keep_alive_timeout: Duration::from_secs(5),
        }
    }
}

pub struct Router {
    listener: TcpListener,
    addr: SocketAddr,
    fleet: Arc<Fleet>,
    config: RouterConfig,
}

/// Handle returned by [`Router::spawn`]; dropping it does **not** stop
/// the router — call [`RouterHandle::shutdown`].
pub struct RouterHandle {
    addr: SocketAddr,
    fleet: Arc<Fleet>,
    stop: Arc<AtomicBool>,
    workers: usize,
}

impl RouterHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Stop accepting and unblock every worker. Idempotent.
    pub fn shutdown(&self) {
        // ORDERING: Release pairs with the Acquire loads in
        // `worker_loop` — a worker that observes the stop flag also
        // observes everything settled before shutdown was requested.
        self.stop.store(true, Ordering::Release);
        for _ in 0..self.workers {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl Router {
    pub fn bind(addr: &str, backends: Vec<SocketAddr>, config: RouterConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let fleet = Arc::new(Fleet::new(backends, config.replicas));
        Ok(Self {
            listener,
            addr,
            fleet,
            config,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Serve until [`RouterHandle::shutdown`]; returns the handle and
    /// a join handle that resolves once every worker has exited.
    pub fn spawn(self) -> io::Result<(RouterHandle, std::thread::JoinHandle<()>)> {
        let stop = Arc::new(AtomicBool::new(false));
        let workers = self.config.workers.max(1);
        let mut joins = Vec::with_capacity(workers);
        for worker in 0..workers {
            let listener = self.listener.try_clone()?;
            let fleet = Arc::clone(&self.fleet);
            let stop = Arc::clone(&stop);
            let config = self.config.clone();
            joins.push(
                std::thread::Builder::new()
                    .name(format!("ft-router-{worker}"))
                    .spawn(move || worker_loop(&listener, &fleet, &stop, &config))?,
            );
        }
        let handle = RouterHandle {
            addr: self.addr,
            fleet: Arc::clone(&self.fleet),
            stop,
            workers,
        };
        let join = std::thread::spawn(move || {
            for j in joins {
                let _ = j.join();
            }
        });
        Ok((handle, join))
    }

    /// Serve on the calling thread (the binary's entry point).
    pub fn serve(self) -> io::Result<()> {
        let (_, join) = self.spawn()?;
        join.join()
            .map_err(|_| io::Error::other("router worker panicked"))
    }
}

fn worker_loop(
    listener: &TcpListener,
    fleet: &Arc<Fleet>,
    stop: &Arc<AtomicBool>,
    config: &RouterConfig,
) {
    let mut conns = Connections::new(fleet.backends());
    loop {
        // ORDERING: Acquire pairs with the Release store in
        // `RouterHandle::shutdown`.
        if stop.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        // ORDERING: Acquire pairs with the Release store in
        // `RouterHandle::shutdown` — re-checked after accept so the
        // unblocking connection it makes is not served as traffic.
        if stop.load(Ordering::Acquire) {
            return;
        }
        serve_connection(stream, fleet, &mut conns, config);
    }
}

/// One client connection: keep-alive request loop until the client
/// closes, errors, times out, or asks to close.
fn serve_connection(
    stream: TcpStream,
    fleet: &Arc<Fleet>,
    conns: &mut Connections,
    config: &RouterConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.keep_alive_timeout));
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                // Malformed request: answer a parse diagnostic once
                // (timeouts and resets just drop), then close.
                if e.kind() == io::ErrorKind::InvalidData {
                    let response = Response::text(400, format!("bad request: {e}\n"));
                    let _ = write_response(reader.get_mut(), &response, false);
                }
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let response = proxy::handle(fleet, conns, &request);
        if write_response(reader.get_mut(), &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}
