//! The router's own metrics plane — same instruments and naming
//! grammar as the serving tier (`ft_router_*`), kept in a dedicated
//! [`MetricsRegistry`] so the merged fleet export can overlay it onto
//! the summed per-node planes without name collisions.

use ft_metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use ft_server::Endpoint;
use std::sync::Arc;

/// Extra endpoint labels the router serves beyond the proxied surface.
pub const FLEET_ENDPOINTS: [&str; 2] = ["fleet_status", "fleet_drain"];

/// Pre-resolved instruments, one slot per proxied endpoint plus the
/// router-only fleet endpoints (indices `Endpoint::ALL.len()..`).
pub struct RouterTelemetry {
    metrics: Arc<MetricsRegistry>,
    requests: Vec<Arc<Counter>>,
    latency: Vec<Arc<Histogram>>,
    /// Proxy sends retried after a failover re-route.
    pub retries: Arc<Counter>,
    /// Unplanned node failovers (connection failure → ring flip).
    pub failovers: Arc<Counter>,
    /// Campaign snapshots restored onto a new owner (failover or
    /// planned drain).
    pub restores: Arc<Counter>,
    /// Requests refused with a retryable 503 (drain window, no
    /// backends alive).
    pub rejects: Arc<Counter>,
    /// Backends currently routable.
    pub nodes_alive: Arc<Gauge>,
}

impl RouterTelemetry {
    pub fn new() -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let labels: Vec<String> = Endpoint::ALL
            .iter()
            .map(|e| e.label().to_string())
            .chain(FLEET_ENDPOINTS.iter().map(|s| s.to_string()))
            .collect();
        let requests = labels
            .iter()
            .map(|l| metrics.counter(&format!("ft_router_requests_total{{endpoint=\"{l}\"}}")))
            .collect();
        let latency = labels
            .iter()
            .map(|l| metrics.histogram(&format!("ft_router_request_ns{{endpoint=\"{l}\"}}")))
            .collect();
        Self {
            requests,
            latency,
            retries: metrics.counter("ft_router_retries_total"),
            failovers: metrics.counter("ft_router_failovers_total"),
            restores: metrics.counter("ft_router_restores_total"),
            rejects: metrics.counter("ft_router_rejects_total"),
            nodes_alive: metrics.gauge("ft_router_nodes_alive"),
            metrics,
        }
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Instrument slot for a proxied endpoint.
    pub fn slot(endpoint: Endpoint) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == endpoint)
            .expect("endpoint in ALL")
    }

    /// Instrument slot for a router-only fleet endpoint label.
    pub fn fleet_slot(label: &str) -> usize {
        Endpoint::ALL.len()
            + FLEET_ENDPOINTS
                .iter()
                .position(|l| *l == label)
                .expect("known fleet endpoint")
    }

    /// Record one routed request (same shape as the serving tier's
    /// recorder, including the traced-tail exemplar offer).
    pub fn record(
        &self,
        slot: usize,
        _status: u16,
        elapsed: std::time::Duration,
        trace: Option<u64>,
    ) {
        self.requests[slot].inc();
        self.latency[slot].record_duration(elapsed);
        if let Some(trace_id) = trace {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            self.latency[slot].offer_exemplar(ns, trace_id);
        }
    }
}

impl Default for RouterTelemetry {
    fn default() -> Self {
        Self::new()
    }
}
