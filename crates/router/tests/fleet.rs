//! End-to-end fleet behaviour over real sockets: a router fronting
//! three `ft-server` nodes must answer like one node — through planned
//! migration (exact generation preserved), mid-flip reads (quotes
//! never 404), and cross-backend bulk reassembly (input order, inline
//! errors).

use ft_core::adaptive::AdaptiveOptions;
use ft_core::registry::CampaignRegistry;
use ft_core::{DeadlineProblem, KernelConfig, PenaltyModel};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use ft_router::{Router, RouterConfig, RouterHandle};
use ft_server::{Server, ServerHandle};
use serde::{map_get, Serialize, Value};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, body) = ft_server::client::request(addr, method, path, body).expect("request");
    (status, serde_json::from_str::<Value>(&body).expect("json"))
}

fn num(value: &Value, key: &str) -> f64 {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_num()
        .unwrap_or_else(|| panic!("{key} not a number in {value:?}"))
}

fn text<'v>(value: &'v Value, key: &str) -> &'v str {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_str()
        .unwrap_or_else(|| panic!("{key} not a string in {value:?}"))
}

struct Fleet {
    backends: Vec<SocketAddr>,
    node_handles: Vec<ServerHandle>,
    node_joins: Vec<std::thread::JoinHandle<()>>,
    router: RouterHandle,
    router_join: std::thread::JoinHandle<()>,
}

impl Fleet {
    fn spawn(nodes: usize) -> Self {
        let mut backends = Vec::new();
        let mut node_handles = Vec::new();
        let mut node_joins = Vec::new();
        for _ in 0..nodes {
            // Aggressive recalibration so drift recalibrates within a
            // short test.
            let registry = Arc::new(CampaignRegistry::with_config(
                KernelConfig::default(),
                AdaptiveOptions {
                    resolve_every: 3,
                    ..AdaptiveOptions::default()
                },
            ));
            let (handle, join) = Server::spawn("127.0.0.1:0", registry).expect("bind node");
            backends.push(handle.addr());
            node_handles.push(handle);
            node_joins.push(join);
        }
        let router = Router::bind(
            "127.0.0.1:0",
            backends.clone(),
            RouterConfig {
                workers: 4,
                ..RouterConfig::default()
            },
        )
        .expect("bind router");
        let (router, router_join) = router.spawn().expect("spawn router");
        Self {
            backends,
            node_handles,
            node_joins,
            router,
            router_join,
        }
    }

    fn addr(&self) -> SocketAddr {
        self.router.addr()
    }

    /// Every backend actually hosting `id` (asked node-by-node, not
    /// via the ring — the tests check reality, not the router's
    /// intent). A drained node keeps its out-of-ring copies, so this
    /// can legitimately return more than one node post-migration.
    fn hosts_of(&self, id: u64) -> Vec<usize> {
        self.backends
            .iter()
            .enumerate()
            .filter(|&(_, &addr)| {
                let (status, _) = request(addr, "GET", &format!("/campaigns/{id}"), None);
                status == 200
            })
            .map(|(node, _)| node)
            .collect()
    }

    /// The unique live host of `id` (pre-migration).
    fn host_of(&self, id: u64) -> Option<usize> {
        self.hosts_of(id).into_iter().next()
    }

    fn teardown(self) {
        self.router.shutdown();
        self.router_join.join().expect("router thread");
        for handle in &self.node_handles {
            handle.shutdown();
        }
        for join in self.node_joins {
            join.join().expect("node thread");
        }
    }
}

fn deadline_spec() -> String {
    let problem = DeadlineProblem::from_market(
        20,
        4.0,
        12,
        &ConstantRate::new(150.0),
        PriceGrid::new(0, 20),
        &LogitAcceptance::new(4.0, 0.0, 30.0),
        PenaltyModel::Linear { per_task: 500.0 },
    );
    format!(
        "{{\"kind\":\"deadline\",\"problem\":{},\"eps\":1e-9}}",
        serde_json::to_string(&problem.to_value()).expect("problem json")
    )
}

/// Create and solve `count` campaigns through the router; returns ids.
fn seed_campaigns(addr: SocketAddr, count: usize) -> Vec<u64> {
    let spec = deadline_spec();
    (0..count)
        .map(|_| {
            let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
            assert_eq!(status, 201, "create failed: {body:?}");
            let id = num(&body, "id") as u64;
            let (status, body) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
            assert_eq!(status, 200, "solve failed: {body:?}");
            id
        })
        .collect()
}

#[test]
fn planned_drain_migrates_at_the_exact_generation() {
    let fleet = Fleet::spawn(3);
    let addr = fleet.addr();
    let ids = seed_campaigns(addr, 6);

    // Recalibrate one campaign so it carries non-trivial engine state
    // (generation ≥ 2, correction ≠ 1) into the migration.
    let id = ids[0];
    let mut generation = 1.0;
    let mut correction = 1.0;
    for interval in 0..6 {
        let obs = format!("{{\"interval\":{interval},\"completions\":1}}");
        let (status, body) = request(
            addr,
            "POST",
            &format!("/campaigns/{id}/observations"),
            Some(&obs),
        );
        assert_eq!(status, 200, "observe failed: {body:?}");
        generation = num(&body, "generation");
        correction = num(&body, "correction");
    }
    assert!(generation >= 2.0, "no recalibration after 6 intervals");
    assert!(correction < 1.0, "drift did not lower the correction");
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=14&interval=6"),
        None,
    );
    assert_eq!(status, 200);
    let price = num(&body, "price");
    assert_eq!(num(&body, "generation"), generation);

    // Drain the node hosting the recalibrated campaign.
    let node = fleet.host_of(id).expect("campaign hosted somewhere");
    let (status, body) = request(addr, "POST", &format!("/fleet/drain?node={node}"), None);
    assert_eq!(status, 200, "drain failed: {body:?}");
    assert!(num(&body, "moved") >= 1.0, "drain moved nothing: {body:?}");

    // The campaign survived on a different node at the exact same
    // generation, correction, and price (the drained node keeps its
    // out-of-ring copy; what matters is that a survivor now hosts it).
    let hosts = fleet.hosts_of(id);
    assert!(
        hosts.iter().any(|&h| h != node),
        "campaign only on the drained node: {hosts:?}"
    );
    let (status, body) = request(addr, "GET", &format!("/campaigns/{id}"), None);
    assert_eq!(status, 200, "post-drain report failed: {body:?}");
    assert_eq!(num(&body, "generation"), generation, "generation torn");
    assert_eq!(text(&body, "status"), "live");
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=14&interval=6"),
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(num(&body, "generation"), generation);
    assert_eq!(num(&body, "price"), price, "recalibrated price changed");

    // Zero lost: the fleet index still sees every campaign exactly once.
    let (status, body) = request(addr, "GET", "/campaigns", None);
    assert_eq!(status, 200);
    assert_eq!(num(&body, "total"), ids.len() as f64);

    // The drained node is out of the membership.
    let (_, body) = request(addr, "GET", "/fleet", None);
    let nodes = map_get(body.as_map().unwrap(), "nodes")
        .unwrap()
        .as_seq()
        .unwrap();
    assert_eq!(
        nodes
            .iter()
            .filter(|n| matches!(map_get(n.as_map().unwrap(), "alive"), Ok(Value::Bool(true))))
            .count(),
        2
    );

    fleet.teardown();
}

#[test]
fn quotes_never_404_while_the_ring_flips() {
    let fleet = Fleet::spawn(3);
    let addr = fleet.addr();
    let ids = Arc::new(seed_campaigns(addr, 9));

    // Hammer quotes from three threads while the main thread drains a
    // node. Every quote must answer 200 — a 404 means a client saw the
    // flip mid-migration.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|lane| {
            let ids = Arc::clone(&ids);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let id = ids[(lane * 3 + served as usize) % ids.len()];
                    let (status, body) = request(
                        addr,
                        "GET",
                        &format!("/campaigns/{id}/price?remaining=10&interval=0"),
                        None,
                    );
                    assert_eq!(status, 200, "quote for {id} failed mid-flip: {body:?}");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Let the hammers get going, then drain whichever node hosts the
    // first campaign (guaranteed to move at least one).
    std::thread::sleep(std::time::Duration::from_millis(50));
    let node = fleet.host_of(ids[0]).expect("hosted");
    let (status, body) = request(addr, "POST", &format!("/fleet/drain?node={node}"), None);
    assert_eq!(status, 200, "drain failed: {body:?}");
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Release);
    let served: u64 = hammers.into_iter().map(|h| h.join().expect("hammer")).sum();
    assert!(served > 0, "hammers never got a quote through");

    // And the flip actually happened while they were running.
    let (_, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(num(&body, "nodes_alive"), 2.0);

    fleet.teardown();
}

#[test]
fn bulk_quotes_reassemble_across_backends_in_input_order() {
    let fleet = Fleet::spawn(3);
    let addr = fleet.addr();
    let ids = seed_campaigns(addr, 9);

    // Find two campaigns hosted on different nodes so the batch
    // genuinely splits (with 9 campaigns on a 3-node ring this always
    // exists).
    let first = ids[0];
    let other = *ids[1..]
        .iter()
        .find(|&&id| fleet.host_of(id) != fleet.host_of(first))
        .expect("two campaigns on different nodes");

    // Interleave the two owners and an unknown id; the reply must be
    // in input order with the unknown answered inline.
    let body = format!(
        "{{\"quotes\":[\
         {{\"id\":{other},\"remaining\":20,\"interval\":0}},\
         {{\"id\":{first},\"remaining\":20,\"interval\":0}},\
         {{\"id\":424242,\"remaining\":1,\"interval\":0}},\
         {{\"id\":{other},\"remaining\":10,\"interval\":3}},\
         {{\"id\":{first},\"remaining\":10,\"interval\":3}}\
         ]}}"
    );
    let (status, reply) = request(addr, "POST", "/campaigns/quotes", Some(&body));
    assert_eq!(status, 200, "bulk quote failed: {reply:?}");
    assert_eq!(num(&reply, "count"), 5.0);
    let items = map_get(reply.as_map().unwrap(), "results")
        .unwrap()
        .as_seq()
        .unwrap();
    for (index, want) in [other, first, 424242, other, first].iter().enumerate() {
        assert_eq!(
            num(&items[index], "id") as u64,
            *want,
            "item {index} out of order: {items:?}"
        );
    }
    assert_eq!(text(&items[2], "error"), "unknown_campaign");
    assert_eq!(num(&items[2], "status"), 404.0);

    // Fleet answers match the single-quote endpoint exactly.
    let (_, single) = request(
        addr,
        "GET",
        &format!("/campaigns/{first}/price?remaining=20&interval=0"),
        None,
    );
    assert_eq!(num(&items[1], "price"), num(&single, "price"));
    assert_eq!(num(&items[1], "generation"), num(&single, "generation"));

    // A structural error names the item by its ORIGINAL index even
    // when the offender sits mid-slice on one backend.
    let body = format!(
        "{{\"quotes\":[\
         {{\"id\":{first},\"remaining\":5,\"interval\":0}},\
         {{\"id\":{other},\"remaining\":5,\"interval\":0}},\
         {{\"id\":{first},\"interval\":0}}\
         ]}}"
    );
    let (status, reply) = request(addr, "POST", "/campaigns/quotes", Some(&body));
    assert_eq!(status, 400);
    assert!(
        text(&reply, "message").contains("item 2"),
        "400 does not name the original item: {reply:?}"
    );

    fleet.teardown();
}

#[test]
fn killed_node_fails_over_from_checkpoints() {
    let fleet = Fleet::spawn(3);
    let addr = fleet.addr();
    let ids = seed_campaigns(addr, 6);

    // Hard-stop one node (no drain — simulates a crash). The router
    // discovers it on the next proxy attempt, flips the ring, and
    // restores that node's campaigns from its solve-time checkpoints.
    let id = ids[0];
    let node = fleet.host_of(id).expect("hosted");
    fleet.node_handles[node].shutdown();

    // Every campaign must still answer — the dead node's from restored
    // checkpoints (same generation the router checkpointed at solve).
    for &id in &ids {
        let (status, body) = request(
            addr,
            "GET",
            &format!("/campaigns/{id}/price?remaining=10&interval=0"),
            None,
        );
        assert_eq!(status, 200, "campaign {id} lost in failover: {body:?}");
        assert!(num(&body, "generation") >= 1.0);
    }
    let (_, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(num(&body, "nodes_alive"), 2.0);

    fleet.teardown();
}
