//! The consistent-hash contract, pinned: membership changes move only
//! the affected node's share of the keyspace, and the hash is
//! deterministic so the shares themselves are stable across builds.

use ft_router::{Ring, DEFAULT_REPLICAS};

const KEYS: u64 = 10_000;

#[test]
fn removing_a_node_moves_exactly_its_keys() {
    let full = Ring::build(&[0, 1, 2], DEFAULT_REPLICAS);
    let survivors = Ring::build(&[0, 2], DEFAULT_REPLICAS);
    let mut owned_by_dead = 0u64;
    let mut moved = 0u64;
    for id in 1..=KEYS {
        let before = full.route(id).unwrap();
        let after = survivors.route(id).unwrap();
        if before == 1 {
            owned_by_dead += 1;
            assert_ne!(after, 1, "key {id} still routes to the removed node");
        } else {
            assert_eq!(after, before, "key {id} moved although its owner survived");
        }
        if before != after {
            moved += 1;
        }
    }
    // Stability: the movement is exactly the dead node's share, and
    // that share is ~1/N (virtual points smooth it; a modulo ring
    // would move ~2/3 of all keys here).
    assert_eq!(moved, owned_by_dead);
    let share = owned_by_dead as f64 / KEYS as f64;
    assert!(
        (0.20..=0.47).contains(&share),
        "node 1 owns an unbalanced share: {share}"
    );
}

#[test]
fn adding_a_node_steals_only_its_share() {
    let small = Ring::build(&[0, 1], DEFAULT_REPLICAS);
    let grown = Ring::build(&[0, 1, 2], DEFAULT_REPLICAS);
    let mut stolen = 0u64;
    for id in 1..=KEYS {
        let before = small.route(id).unwrap();
        let after = grown.route(id).unwrap();
        if before != after {
            assert_eq!(after, 2, "key {id} moved between surviving nodes");
            stolen += 1;
        }
    }
    let share = stolen as f64 / KEYS as f64;
    assert!(
        (0.20..=0.47).contains(&share),
        "new node stole an unbalanced share: {share}"
    );
}

/// The hash is a pure function of (node index, replica, id): the same
/// membership always builds the same ring, independent of build order
/// or process. Pinned routes guard against accidental hash changes —
/// a silent change would strand every persisted placement expectation
/// (and CI's fleet gates) on the wrong node.
#[test]
fn placement_is_pinned() {
    let ring = Ring::build(&[0, 1, 2], DEFAULT_REPLICAS);
    let routes: Vec<usize> = (1..=12u64).map(|id| ring.route(id).unwrap()).collect();
    assert_eq!(routes, [1, 1, 2, 2, 2, 2, 0, 2, 1, 0, 1, 1]);
    // Shuffled construction order builds the identical ring.
    let shuffled = Ring::build(&[2, 0, 1], DEFAULT_REPLICAS);
    for id in 1..=KEYS {
        assert_eq!(ring.route(id), shuffled.route(id));
    }
}
