//! `ft-server` — run one campaign-registry node over HTTP.
//!
//! ```text
//! ft-server [--addr HOST:PORT] [--workers N] [--queue N]
//! ```
//!
//! Binds, prints `listening on ADDR` on stdout (the line a fleet
//! launcher parses for the bound port when `--addr` uses port 0), and
//! serves until killed. One process per node; a fleet is N of these
//! behind an `ft-router`.

use ft_core::registry::CampaignRegistry;
use ft_server::{Server, ServerConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!("usage: ft-server [--addr HOST:PORT] [--workers N] [--queue N]");
    std::process::exit(2);
}

fn main() {
    let mut addr = String::from("127.0.0.1:0");
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("ft-server: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--queue" => match value("--queue").parse() {
                Ok(n) if n > 0 => config.queue_depth = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("ft-server: unknown flag `{other}`");
                usage()
            }
        }
    }

    let registry = Arc::new(CampaignRegistry::new());
    let server = match Server::bind_with(&addr, registry, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ft-server: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    server.serve();
}
