//! A minimal blocking HTTP/1.1 client — just enough to drive the
//! campaign API from tests, examples, benchmarks and smoke scripts
//! without pulling in a real HTTP stack.
//!
//! Two flavours:
//!
//! - [`request`]: one-shot, `Connection: close` — a fresh TCP connect
//!   per call. Simple and stateless; right for probes and floods.
//! - [`Client`]: keep-alive — one persistent connection reused across
//!   requests, reconnecting transparently when the server closed it
//!   (idle timeout, shutdown, or a close-after response). This is what
//!   `ft-load`'s socket backend drives, so socket benchmarks measure
//!   the serving tier, not a TCP handshake per op.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// Send one request and read the response: `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let body = body.unwrap_or("");
    // One buffer, one write: `write!` straight at a TcpStream issues a
    // syscall per format fragment, and that write-write-read pattern
    // collides with Nagle + delayed ACK (~40ms stalls on warm
    // connections).
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: ft-client\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let written = stream.write_all(request.as_bytes());
    // A server may answer-and-close before reading the whole request
    // (e.g. an over-capacity 503 from the acceptor): the write fails
    // with EPIPE but a complete response is still waiting to be read.
    if let Err(e) = written {
        if !matches!(
            e.kind(),
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset
        ) {
            return Err(e);
        }
    }
    let mut reader = BufReader::new(stream);
    read_response(&mut reader).map(|(status, body, _, _)| (status, body))
}

/// Read one HTTP response off `reader`: `(status, body, keep_alive,
/// trace)`. `keep_alive` reports whether the server intends to keep
/// the connection open (`Connection: close` absent); `trace` is the
/// echoed `x-ft-trace` id, when the request was traced.
#[allow(clippy::type_complexity)]
fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<(u16, String, bool, Option<u64>)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "eof before status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    let mut trace = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof in response headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            if name.eq_ignore_ascii_case("connection") && value.trim().eq_ignore_ascii_case("close")
            {
                keep_alive = false;
            }
            if name.eq_ignore_ascii_case("x-ft-trace") {
                trace = ft_trace::parse_trace_id(value.trim());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, body, keep_alive, trace))
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "body not UTF-8"))
}

/// A keep-alive HTTP/1.1 client: one persistent connection, lazily
/// (re)connected. Not thread-safe — use one per driving thread (or a
/// small checkout pool, like `ft-load`'s socket backend does).
pub struct Client {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    /// No connection is opened until the first [`Client::request`].
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, stream: None }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Send one request on the persistent connection and read the
    /// response: `(status, body)`.
    ///
    /// If the server closed the connection since the last request
    /// (keep-alive idle timeout, shutdown), the send fails mid-flight;
    /// that one case retries once on a fresh connection — safe because
    /// a request the server never finished reading was never routed.
    /// Errors on a freshly opened connection are returned as-is.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        self.request_traced(method, path, body, None)
            .map(|(status, body, _)| (status, body))
    }

    /// Like [`Client::request`], but tags the request with an
    /// `x-ft-trace` id so the server samples it into the tracing
    /// plane; returns the echoed id alongside status and body.
    pub fn request_traced(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        trace: Option<u64>,
    ) -> std::io::Result<(u16, String, Option<u64>)> {
        let reused = self.stream.is_some();
        match self.try_request(method, path, body, trace) {
            Err(e) if reused && retryable(&e) => {
                self.stream = None;
                self.try_request(method, path, body, trace)
            }
            result => result,
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        trace: Option<u64>,
    ) -> std::io::Result<(u16, String, Option<u64>)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(BufReader::new(stream));
        }
        let reader = self.stream.as_mut().expect("connected above");
        let body = body.unwrap_or("");
        let trace_header = match trace {
            Some(id) => format!("x-ft-trace: {id:016x}\r\n"),
            None => String::new(),
        };
        // No `Connection: close`: HTTP/1.1 defaults to keep-alive. One
        // buffer, one write — see [`request`] on Nagle stalls.
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: ft-client\r\nContent-Length: {}\r\n{trace_header}\r\n{body}",
            body.len()
        );
        let written = reader.get_mut().write_all(request.as_bytes());
        // Same tolerance as the one-shot path: the server may have
        // answered-and-closed (503) before reading the whole request;
        // the response is still there to read.
        if let Err(e) = written {
            if !matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset
            ) {
                self.stream = None;
                return Err(e);
            }
        }
        match read_response(reader) {
            Ok((status, body, keep_alive, echoed)) => {
                if !keep_alive {
                    self.stream = None;
                }
                Ok((status, body, echoed))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Failures that mean "the server dropped the old connection", not
/// "this request was rejected": safe to retry once on a reconnect.
fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}
