//! A minimal blocking HTTP/1.1 client — one request per connection,
//! just enough to probe the campaign API from tests, examples and smoke
//! scripts without pulling in a real HTTP stack.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Send one request and read the response: `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let written = write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: ft-client\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A server may answer-and-close before reading the whole request
    // (e.g. an over-capacity 503 from the acceptor): the write fails
    // with EPIPE but a complete response is still waiting to be read.
    if let Err(e) = written {
        if !matches!(
            e.kind(),
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset
        ) {
            return Err(e);
        }
    }
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof in response headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, body))
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "body not UTF-8"))
}
