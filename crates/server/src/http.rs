//! A deliberately small HTTP/1.1 codec over `std::io` — just enough for
//! the JSON campaign API: request line + headers + `Content-Length`
//! bodies in, status + JSON bodies out, with keep-alive. No chunked
//! transfer, no TLS, no percent-decoding beyond `%XX` in query values.

use std::io::{self, BufRead, Write};

/// Upper bounds keeping a misbehaving client from ballooning memory.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path with the query string stripped (e.g. `/campaigns/3/price`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Trace id from an `x-ft-trace` header, if the client sent one
    /// (propagated through the handler and echoed on the response).
    pub trace: Option<u64>,
}

impl Request {
    /// First query value under `key`.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An outgoing response: status code + body + content type.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub content_type: &'static str,
    /// Trace id echoed back as an `x-ft-trace` response header.
    pub trace: Option<u64>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
            trace: None,
        }
    }

    /// Plain-text response (the Prometheus exposition format).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "text/plain; version=0.0.4",
            trace: None,
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Read one `\n`-terminated line without ever buffering more than the
/// remaining header `budget` — `read_line` on a raw stream would keep
/// allocating for a newline that never comes. `Ok(None)` is EOF before
/// any byte.
fn read_line_bounded<R: BufRead>(reader: &mut R, budget: &mut usize) -> io::Result<Option<String>> {
    let mut limited = io::Read::take(reader.by_ref(), *budget as u64);
    let mut line = String::new();
    let n = limited.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    *budget -= n;
    if !line.ends_with('\n') && *budget == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "headers too large",
        ));
    }
    Ok(Some(line))
}

/// Read one request off the stream. `Ok(None)` means the client closed
/// the connection cleanly before sending another request.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut budget = MAX_HEADER_BYTES;
    let Some(line) = read_line_bounded(reader, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad request line",
            ))
        }
    };

    // Headers: we only act on Content-Length, Connection and
    // x-ft-trace.
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut trace = None;
    loop {
        let Some(header) = read_line_bounded(reader, &mut budget)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof in headers",
            ));
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-ft-trace") {
            // A malformed id is ignored, not a 400: tracing is
            // best-effort and must never fail a request.
            trace = ft_trace::parse_trace_id(value);
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body not UTF-8"))?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        trace,
    }))
}

/// Incremental request parse over a byte buffer (the reactor's input
/// path — no blocking reads). Returns:
///
/// - `Ok(Some((request, consumed)))` — one complete request parsed
///   from `buf[..consumed]`; the caller drains that prefix and calls
///   again (pipelined requests parse back-to-back).
/// - `Ok(None)` — the buffer holds only a prefix of a request; read
///   more bytes and retry.
/// - `Err(_)` — the bytes can never become a valid request (bad
///   request line / content-length, or the same `MAX_HEADER_BYTES` /
///   `MAX_BODY_BYTES` budgets [`read_request`] enforces).
pub fn parse_request(buf: &[u8]) -> io::Result<Option<(Request, usize)>> {
    // Find the first empty line: headers end there, body starts after.
    let mut line_start = 0usize;
    let mut body_start = None;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let mut line = &buf[line_start..i];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.is_empty() {
            body_start = Some(i + 1);
            break;
        }
        line_start = i + 1;
    }
    let Some(body_start) = body_start else {
        // Still inside the head: give up once it can no longer fit the
        // header budget, otherwise wait for more bytes.
        if buf.len() > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "headers too large",
            ));
        }
        return Ok(None);
    };
    if body_start > MAX_HEADER_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "headers too large",
        ));
    }

    let head = std::str::from_utf8(&buf[..body_start])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "headers not UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad request line",
            ))
        }
    };
    let mut content_length = 0usize;
    let mut keep_alive = version != "HTTP/1.0";
    let mut trace = None;
    for header in lines {
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-ft-trace") {
            // Best-effort, as in `read_request`.
            trace = ft_trace::parse_trace_id(value);
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let Some(body_bytes) = buf.get(body_start..body_start + content_length) else {
        return Ok(None); // body not fully buffered yet
    };
    let body = String::from_utf8(body_bytes.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body not UTF-8"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Some((
        Request {
            method,
            path,
            query,
            body,
            keep_alive,
            trace,
        },
        body_start + content_length,
    )))
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Decode `%XX` escapes and `+` (space); invalid escapes pass through.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Write a response; `keep_alive` controls the `Connection` header.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    if let Some(trace) = response.trace {
        write!(writer, "x-ft-trace: {trace:016x}\r\n")?;
    }
    write!(writer, "\r\n{}", response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Request {
        read_request(&mut BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req = parse(
            "POST /campaigns/3/observations?note=a%20b&x=1 HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns/3/observations");
        assert_eq!(req.query("note"), Some("a b"));
        assert_eq!(req.query("x"), Some("1"));
        assert_eq!(req.body, "{\"a\": 1}\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
    }

    #[test]
    fn eof_is_clean_none() {
        let req = read_request(&mut BufReader::new(&b""[..])).unwrap();
        assert!(req.is_none());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(read_request(&mut BufReader::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn newline_less_flood_errors_instead_of_buffering() {
        // An endless byte stream with no '\n' must hit the header budget
        // and error — not grow a String until the allocator gives up.
        let mut reader =
            BufReader::new(std::io::Read::take(std::io::repeat(b'a'), 64 * 1024 * 1024));
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn incremental_parse_waits_for_complete_requests() {
        let raw = b"POST /campaigns/quotes HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        // Every strict prefix is incomplete, never an error.
        for cut in 0..raw.len() {
            assert!(
                parse_request(&raw[..cut]).expect("prefix parses").is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (request, consumed) = parse_request(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/campaigns/quotes");
        assert_eq!(request.body, "body");
        assert!(request.keep_alive);
    }

    #[test]
    fn incremental_parse_walks_pipelined_requests() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, consumed) = parse_request(raw).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(first.keep_alive);
        let (second, rest) = parse_request(&raw[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/metrics");
        assert!(!second.keep_alive);
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn incremental_parse_enforces_budgets() {
        // Headroom exhausted with no terminator in sight: error, so the
        // reactor can 400 a slowloris instead of buffering forever.
        let endless = vec![b'a'; MAX_HEADER_BYTES + 1];
        assert!(parse_request(&endless).is_err());
        // Oversized declared body: error up front.
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(parse_request(huge.as_bytes()).is_err());
        // Garbage request line: error once the head terminator arrives.
        assert!(parse_request(b"nope\r\n\r\n").is_err());
    }

    #[test]
    fn incremental_parse_matches_blocking_reader() {
        let raw = "POST /campaigns/3/observations?note=a%20b&x=1 HTTP/1.1\r\n\
                   Host: localhost\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n";
        let blocking = parse(raw);
        let (incremental, consumed) = parse_request(raw.as_bytes()).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(incremental.method, blocking.method);
        assert_eq!(incremental.path, blocking.path);
        assert_eq!(incremental.query, blocking.query);
        assert_eq!(incremental.body, blocking.body);
        assert_eq!(incremental.keep_alive, blocking.keep_alive);
    }

    #[test]
    fn header_budget_spans_all_header_lines() {
        // Many small header lines must exhaust the same budget.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            raw.push_str(&format!("X-Filler-{i}: {}\r\n", "v".repeat(64)));
        }
        raw.push_str("\r\n");
        assert!(read_request(&mut BufReader::new(raw.as_bytes())).is_err());
    }
}
