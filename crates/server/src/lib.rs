//! # ft-server
//!
//! A std-only HTTP/1.1 JSON front-end for the campaign lifecycle
//! registry ([`ft_core::registry::CampaignRegistry`]) — the network
//! serving layer the ROADMAP's production north-star asks for. No
//! third-party networking stack: `TcpListener` + a thread per
//! connection, a hand-rolled request/response codec ([`http`]), and a
//! router ([`router`]) that maps the REST surface onto the registry:
//!
//! ```text
//! POST   /campaigns                    register a draft (JSON spec)
//! GET    /campaigns?limit=..           fleet index (id, kind, status, generation)
//! POST   /campaigns/{id}/solve         solve → publish generation 1
//! GET    /campaigns/{id}/price?...     quote from the live generation
//! POST   /campaigns/{id}/observations  report completions → recalibrate
//! GET    /campaigns/{id}               status + diagnostics
//! DELETE /campaigns/{id}               evict (tombstone)
//! GET    /healthz                      uptime, version, fleet by status
//! GET    /metrics                      observability plane (JSON / Prometheus)
//! ```
//!
//! Serving runs on a fixed acceptor pool: one accept loop feeding
//! `ServerConfig::workers` handler threads through a bounded queue —
//! connection floods are answered `503 server_busy` once the queue is
//! full instead of growing the thread count. Every routed request is
//! recorded into the shared `ft-metrics` plane (per-endpoint counts,
//! latency histograms, status classes, connection accounting), which
//! `GET /metrics` exports alongside the registry's own instruments.
//!
//! Structured [`ft_core::PricingError`]s map onto HTTP statuses
//! ([`router::status_for`]): unknown campaign → 404, draft/evicted →
//! 409, infeasible state → 422, malformed specs → 400.
//!
//! The server shares its registry behind an `Arc`, so an embedder can
//! snapshot (`registry.save(..)`) or restore
//! (`CampaignRegistry::load(..)`) around restarts; live campaigns come
//! back at the same policy generation without re-solving. See
//! `examples/http_server.rs` for the end-to-end walkthrough and
//! `tests/lifecycle.rs` for the full lifecycle driven over a real
//! socket.

pub mod client;
pub mod http;
pub mod router;
pub mod server;
pub mod state;

pub use router::{handle, status_for};
pub use server::{Server, ServerConfig, ServerHandle};
pub use state::{AppState, Endpoint};
