//! # ft-server
//!
//! A std-only HTTP/1.1 JSON front-end for the campaign lifecycle
//! registry ([`ft_core::registry::CampaignRegistry`]) — the network
//! serving layer the ROADMAP's production north-star asks for. No
//! third-party networking stack: a nonblocking `TcpListener` on a
//! hand-rolled epoll event loop, an incremental
//! request/response codec ([`http`]), and a
//! router ([`router`]) that maps the REST surface onto the registry:
//!
//! ```text
//! POST   /campaigns                    register a draft (JSON spec)
//! GET    /campaigns?limit=..           fleet index (id, kind, status, generation)
//! POST   /campaigns/quotes             bulk: N price quotes, one round trip
//! POST   /campaigns/observations       bulk: N observations, one round trip
//! POST   /campaigns/{id}/solve         solve → publish generation 1
//! GET    /campaigns/{id}/price?...     quote from the live generation
//! POST   /campaigns/{id}/observations  report completions → recalibrate
//! GET    /campaigns/{id}               status + diagnostics
//! DELETE /campaigns/{id}               evict (tombstone)
//! GET    /healthz                      uptime, version, fleet by status
//! GET    /metrics                      observability plane (JSON / Prometheus)
//! ```
//!
//! Serving runs on an **epoll reactor** (`reactor.rs`, over the raw
//! bindings in `sys.rs`): one event-loop thread multiplexes every
//! connection with nonblocking I/O, parses requests incrementally, and
//! hands them through a bounded ready-queue to
//! `ServerConfig::workers` handler threads — so handler execution
//! stays off the event loop, idle keep-alive connections cost an fd
//! instead of a thread, and a client may pipeline requests (responses
//! return in order). When the ready-queue is full further requests
//! are answered `503 server_busy` instead of growing the thread
//! count. Every routed request is recorded into the shared
//! `ft-metrics` plane (per-endpoint counts, latency histograms,
//! status classes, connection accounting, ready-queue wait), which
//! `GET /metrics` exports alongside the registry's own instruments.
//!
//! Structured [`ft_core::PricingError`]s map onto HTTP statuses
//! ([`router::status_for`]): unknown campaign → 404, draft/evicted →
//! 409, infeasible state → 422, malformed specs → 400.
//!
//! The server shares its registry behind an `Arc`, so an embedder can
//! snapshot (`registry.save(..)`) or restore
//! (`CampaignRegistry::load(..)`) around restarts; live campaigns come
//! back at the same policy generation without re-solving. See
//! `examples/http_server.rs` for the end-to-end walkthrough and
//! `tests/lifecycle.rs` for the full lifecycle driven over a real
//! socket.

pub mod client;
pub mod http;
mod reactor;
pub mod router;
pub mod server;
pub mod state;
mod sys;

pub use client::Client;
pub use router::{handle, status_for};
pub use server::{Server, ServerConfig, ServerHandle};
pub use state::{AppState, Endpoint};
