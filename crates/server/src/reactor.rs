//! The epoll-driven serving tier: one event-loop thread multiplexing
//! every connection, a bounded ready-queue of **parsed requests**, and
//! the fixed worker pool executing handlers off the loop.
//!
//! ```text
//!        epoll (edge-triggered conns, level-triggered listener)
//!          │ readiness
//!          ▼
//!   reactor thread ── accept / read / parse ──► JobQueue (bounded)
//!          ▲                                        │ pop
//!          │ wake pipe + completions                ▼
//!          └──────────────────────────────── worker threads
//!                                             (router::handle)
//! ```
//!
//! Per connection the reactor keeps a small state machine: an input
//! buffer fed to [`crate::http::parse_request`], a sequence counter
//! for pipelined requests, the set of finished-but-unwritten
//! responses, and one in-progress write buffer. Responses are
//! serialized strictly in request order, so a keep-alive client may
//! pipeline any number of requests and still read its answers in
//! order.
//!
//! Overload and failure semantics match the old blocking pool exactly:
//! a parsed request that finds the ready-queue full is answered `503
//! server_busy` (in order!) and the connection closes after the flush;
//! malformed bytes get a `400` and a close; a connection idle past its
//! deadline (generous before the first request, short between
//! keep-alive requests) is dropped without an answer; shutdown stops
//! accepting, answers everything already parsed, closes idle
//! keep-alive connections immediately, and force-drops stragglers
//! after a short grace.

use crate::http::{parse_request, write_response, Request, Response};
use crate::router;
use crate::server::ServerConfig;
use crate::state::AppState;
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = 0;
const WAKE_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How many epoll events one wait may deliver.
const EVENT_BATCH: usize = 256;

/// Per-read scratch size; reads loop until `WouldBlock` regardless.
const READ_CHUNK: usize = 16 * 1024;

/// After shutdown, connections that still cannot flush (a peer that
/// stopped reading, a handler still running) are force-dropped past
/// this grace so `serve()` returns promptly.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// One parsed request on its way to a worker.
struct Job {
    token: u64,
    seq: u64,
    request: Request,
    queued_at: Instant,
}

/// One finished response on its way back to the reactor.
struct Completion {
    token: u64,
    seq: u64,
    response: Response,
    keep_alive: bool,
}

/// The bounded ready-queue between the reactor and the worker pool —
/// the same Mutex+Condvar shape the old connection queue had, but
/// holding parsed requests instead of raw sockets.
struct JobQueue {
    inner: Mutex<JobsInner>,
    not_empty: Condvar,
    capacity: usize,
}

struct JobsInner {
    queue: std::collections::VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(JobsInner {
                queue: std::collections::VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue unless full or closed; hands the job back on rejection
    /// so the reactor can answer 503 at the job's sequence slot.
    #[allow(clippy::result_large_err)] // rejection must return the whole job
    fn try_push(&self, job: Job) -> Result<(), Job> {
        // Poisoning policy (see ft-audit L5): a worker that panicked
        // while holding the queue lock must not cascade panics through
        // the serving tier — the queue is a VecDeque plus a flag, valid
        // after any partial update, so recover the guard and keep
        // serving.
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.queue.len() >= self.capacity {
            return Err(job);
        }
        inner.queue.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` only after `close()` *and* the queue has
    /// drained — already-parsed requests are answered, not dropped.
    fn pop(&self) -> Option<Job> {
        // Poisoning policy: recover, as in `try_push`.
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        // Poisoning policy: recover, as in `try_push`.
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
    }
}

/// A response waiting its turn in the connection's write order.
struct Outbound {
    response: Response,
    keep_alive: bool,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed input bytes (already-consumed prefixes are drained).
    buf: Vec<u8>,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence number to serialize into the write buffer.
    write_seq: u64,
    /// Finished responses waiting for their turn (sparse, tiny).
    pending: Vec<(u64, Outbound)>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Idle deadline; `None` while requests are in flight.
    deadline: Option<Instant>,
    /// At least one response fully flushed (switches the idle deadline
    /// from the generous first-request timeout to the short keep-alive
    /// one).
    served_any: bool,
    /// No further requests will be parsed (Connection: close seen, an
    /// overflow/malformed answer queued, or shutdown).
    closing: bool,
    /// Close as soon as the write buffer drains.
    close_after_flush: bool,
    /// Peer sent EOF / RDHUP; drop once nothing is left to write.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, deadline: Instant) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            next_seq: 0,
            write_seq: 0,
            pending: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            deadline: Some(deadline),
            served_any: false,
            closing: false,
            close_after_flush: false,
            read_closed: false,
        }
    }

    /// No request awaiting a handler or a write.
    fn idle(&self) -> bool {
        self.next_seq == self.write_seq && self.write_pos >= self.write_buf.len()
    }
}

fn busy_response() -> Response {
    Response::json(
        503,
        "{\"error\":\"server_busy\",\"message\":\"request queue full, retry\"}".to_string(),
    )
}

fn malformed_response() -> Response {
    Response::json(
        400,
        "{\"error\":\"bad_request\",\"message\":\"malformed HTTP request\"}".to_string(),
    )
}

/// Answer an over-capacity connection with a quick 503 and close it.
/// The accepted socket is still blocking here; bound the write so a
/// client that won't read can't stall the event loop.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut writer = std::io::BufWriter::new(stream);
    let _ = write_response(&mut writer, &busy_response(), false);
}

/// What to do with a connection after an I/O step.
#[derive(PartialEq)]
enum Verdict {
    Keep,
    Drop,
}

/// Run the serving loop until shutdown. The calling thread becomes the
/// reactor; `config.workers` handler threads are spawned scoped inside
/// (total thread count: `1 + workers`, exactly like the old acceptor
/// pool).
pub(crate) fn run(
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let epoll = Epoll::new().expect("epoll_create1");
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    epoll
        .add(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN)
        .expect("register listener");

    let (wake_rx, wake_tx) = UnixStream::pair().expect("wake pipe");
    wake_rx.set_nonblocking(true).expect("nonblocking wake");
    wake_tx.set_nonblocking(true).expect("nonblocking wake");
    epoll
        .add(wake_rx.as_raw_fd(), WAKE_TOKEN, EPOLLIN)
        .expect("register wake pipe");
    let wake_tx = Arc::new(wake_tx);

    let jobs = JobQueue::new(config.queue_depth);
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let workers = config.workers.max(1);

    std::thread::scope(|s| {
        for _ in 0..workers {
            let jobs = &jobs;
            let state = &state;
            let completions = Arc::clone(&completions);
            let wake = Arc::clone(&wake_tx);
            let closing = &*shutdown;
            s.spawn(move || {
                while let Some(job) = jobs.pop() {
                    let queue_wait = job.queued_at.elapsed();
                    state.telemetry.queue_wait.record_duration(queue_wait);
                    // Trace when the client asked for it (x-ft-trace)
                    // or on the organic 1-in-1024 sample. The root span
                    // is backdated to when the request was parsed, so
                    // the tier hand-off shows up as a `queue_wait`
                    // child instead of vanishing between spans.
                    let trace_id = job
                        .request
                        .trace
                        .or_else(|| ft_trace::sample(1024).then(ft_trace::next_trace_id));
                    let dequeued_ns = ft_trace::now_ns();
                    let queued_ns = dequeued_ns
                        .saturating_sub(u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX));
                    let root = ft_trace::begin_at(
                        trace_id.unwrap_or(0),
                        "server.request.serve",
                        queued_ns,
                    );
                    ft_trace::record("server.reactor.queue_wait", queued_ns, dequeued_ns);
                    let response = router::handle(state, &job.request);
                    drop(root);
                    // During shutdown, answer the request in hand but
                    // decline the keep-alive so the connection closes.
                    // ORDERING: Acquire pairs with the Release store in
                    // `ServerHandle::shutdown` — seeing the flag also
                    // sees any state the shutdown caller settled first.
                    let keep_alive = job.request.keep_alive && !closing.load(Ordering::Acquire);
                    completions
                        .lock()
                        // Poisoning policy (ft-audit L5): a panicking
                        // peer worker must not take the tier down; the
                        // Vec is valid after any partial push.
                        .unwrap_or_else(|e| e.into_inner())
                        .push(Completion {
                            token: job.token,
                            seq: job.seq,
                            response,
                            keep_alive,
                        });
                    // Nonblocking one-byte poke; a full pipe already
                    // guarantees a pending wakeup.
                    let _ = (&*wake).write(&[1]);
                }
            });
        }

        let mut reactor = Reactor {
            epoll: &epoll,
            listener: &listener,
            state: &state,
            config: &config,
            jobs: &jobs,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            draining: false,
        };
        let mut events = [EpollEvent::zeroed(); EVENT_BATCH];

        loop {
            let timeout = reactor.wait_timeout();
            let n = epoll.wait(&mut events, timeout).unwrap_or_default();
            let now = Instant::now();

            // ORDERING: Acquire pairs with the Release store in
            // `ServerHandle::shutdown` (cross-crate counterpart of the
            // worker-side load above).
            if shutdown.load(Ordering::Acquire) && !reactor.draining {
                reactor.begin_drain(now);
                jobs.close();
            }

            for event in &events[..n] {
                let (readiness, token) = event.readiness();
                match token {
                    LISTENER_TOKEN => reactor.accept_ready(now),
                    WAKE_TOKEN => {
                        let mut sink = [0u8; 64];
                        while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                    }
                    token => reactor.conn_ready(token, readiness, now),
                }
            }

            // Poisoning policy: recover, as at the worker-side push.
            let finished =
                std::mem::take(&mut *completions.lock().unwrap_or_else(|e| e.into_inner()));
            for completion in finished {
                reactor.complete(completion, now);
            }

            reactor.expire(now);

            if reactor.draining && reactor.conns.is_empty() {
                break;
            }
        }
    });
}

struct Reactor<'a> {
    epoll: &'a Epoll,
    listener: &'a TcpListener,
    state: &'a AppState,
    config: &'a ServerConfig,
    jobs: &'a JobQueue,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
}

impl Reactor<'_> {
    /// Sleep until the nearest idle deadline (the shutdown poke and the
    /// worker wake pipe interrupt an indefinite wait).
    fn wait_timeout(&self) -> Option<Duration> {
        let nearest = self.conns.values().filter_map(|c| c.deadline).min()?;
        Some(nearest.saturating_duration_since(Instant::now()))
    }

    /// Shutdown observed: stop accepting, close idle connections now,
    /// and give the rest a short grace to flush in-flight responses.
    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        let grace = now + DRAIN_GRACE;
        let mut gone = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            conn.closing = true;
            if conn.idle() {
                gone.push(token);
            } else {
                conn.deadline = Some(grace);
            }
        }
        for token in gone {
            self.drop_conn(token);
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        if self.draining {
            return;
        }
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Transient accept errors (EMFILE under floods,
                    // ECONNABORTED) must not busy-spin the loop.
                    std::thread::sleep(Duration::from_millis(20));
                    break;
                }
            };
            self.state.telemetry.connections_accepted.inc();
            if self.conns.len() >= self.config.max_connections {
                self.state.telemetry.connections_rejected.inc();
                reject_busy(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Small request/response exchanges on warm keep-alive
            // connections stall ~40ms under Nagle + delayed ACK;
            // latency matters more than segment coalescing here.
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .epoll
                .add(
                    stream.as_raw_fd(),
                    token,
                    EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP,
                )
                .is_err()
            {
                continue;
            }
            self.state.telemetry.connections_active.inc();
            self.conns.insert(
                token,
                Conn::new(stream, now + self.config.first_request_timeout),
            );
            // Edge-triggered: bytes that raced the registration may
            // never re-edge; drain once immediately.
            self.conn_ready(token, EPOLLIN, now);
        }
    }

    fn conn_ready(&mut self, token: u64, readiness: u32, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if readiness & (EPOLLERR | EPOLLHUP) != 0 {
            self.drop_conn(token);
            return;
        }
        if readiness & (EPOLLIN | EPOLLRDHUP) != 0
            && Self::read_and_parse(conn, token, self.jobs, self.state, self.config, now)
                == Verdict::Drop
        {
            self.drop_conn(token);
            return;
        }
        if readiness & EPOLLOUT != 0 {
            self.after_write(token, now);
        }
    }

    /// Drain the socket, feed the parser, dispatch parsed requests.
    fn read_and_parse(
        conn: &mut Conn,
        token: u64,
        jobs: &JobQueue,
        state: &AppState,
        config: &ServerConfig,
        now: Instant,
    ) -> Verdict {
        if !conn.closing {
            let mut scratch = [0u8; READ_CHUNK];
            loop {
                match (&conn.stream).read(&mut scratch) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => conn.buf.extend_from_slice(&scratch[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Verdict::Drop,
                }
            }
            while !conn.closing {
                match parse_request(&conn.buf) {
                    Ok(Some((request, consumed))) => {
                        conn.buf.drain(..consumed);
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        if !request.keep_alive {
                            conn.closing = true;
                        }
                        let job = Job {
                            token,
                            seq,
                            request,
                            queued_at: now,
                        };
                        if let Err(job) = jobs.try_push(job) {
                            // Ready-queue full: the bounded-in-flight
                            // contract answers 503 at this request's
                            // slot and closes the connection after the
                            // in-order flush.
                            state.telemetry.connections_rejected.inc();
                            conn.pending.push((
                                job.seq,
                                Outbound {
                                    response: busy_response(),
                                    keep_alive: false,
                                },
                            ));
                            conn.closing = true;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.pending.push((
                            seq,
                            Outbound {
                                response: malformed_response(),
                                keep_alive: false,
                            },
                        ));
                        conn.closing = true;
                    }
                }
            }
        }
        // Peer half-closed with nothing left to answer: done.
        if conn.read_closed && conn.idle() && conn.pending.is_empty() {
            return Verdict::Drop;
        }
        // Deadline bookkeeping: suspended while requests are in
        // flight, refreshed whenever bytes arrive on an idle
        // connection (a slow sender gets a full window per burst, the
        // same allowance the blocking tier's per-read timeout gave).
        if conn.idle() && conn.pending.is_empty() {
            conn.deadline = Some(
                now + if conn.served_any {
                    config.keep_alive_timeout
                } else {
                    config.first_request_timeout
                },
            );
        } else {
            conn.deadline = None;
        }
        Self::flush(conn);
        Verdict::Keep
    }

    /// A worker finished `completion`: slot it into its connection's
    /// write order and flush whatever became contiguous.
    fn complete(&mut self, completion: Completion, now: Instant) {
        let Some(conn) = self.conns.get_mut(&completion.token) else {
            return; // connection already dropped (timeout, error, drain)
        };
        conn.pending.push((
            completion.seq,
            Outbound {
                response: completion.response,
                keep_alive: completion.keep_alive,
            },
        ));
        self.after_write(completion.token, now);
    }

    /// Serialize + write as much as the socket takes, then apply the
    /// connection's post-write fate (close, or re-arm the idle
    /// deadline).
    fn after_write(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if Self::flush(conn) == Verdict::Drop {
            self.drop_conn(token);
            return;
        }
        let conn = self.conns.get_mut(&token).expect("conn still present");
        if conn.write_pos >= conn.write_buf.len() {
            if conn.close_after_flush || (conn.idle() && (conn.closing || conn.read_closed)) {
                self.drop_conn(token);
                return;
            }
            // Only a connection that actually had a response flushed
            // graduates to the keep-alive deadline: fresh sockets get a
            // spurious EPOLLOUT (writable on arrival) that lands here
            // with nothing ever served, and those must keep their
            // first-request deadline.
            if conn.idle() && conn.write_seq > 0 {
                conn.served_any = true;
                conn.deadline = Some(now + self.config.keep_alive_timeout);
            }
        }
    }

    /// The write pump: alternate between pushing the current buffer
    /// into the socket and serializing the next in-order response.
    fn flush(conn: &mut Conn) -> Verdict {
        loop {
            if conn.write_pos < conn.write_buf.len() {
                match (&conn.stream).write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => return Verdict::Drop,
                    Ok(n) => conn.write_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Verdict::Keep,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Verdict::Drop,
                }
            } else {
                conn.write_buf.clear();
                conn.write_pos = 0;
                if conn.close_after_flush {
                    return Verdict::Keep; // after_write drops it
                }
                let Some(i) = conn
                    .pending
                    .iter()
                    .position(|(seq, _)| *seq == conn.write_seq)
                else {
                    return Verdict::Keep;
                };
                let (_, outbound) = conn.pending.swap_remove(i);
                write_response(&mut conn.write_buf, &outbound.response, outbound.keep_alive)
                    .expect("serialize into Vec");
                conn.write_seq += 1;
                if !outbound.keep_alive {
                    conn.closing = true;
                    conn.close_after_flush = true;
                }
                // A flushed response whose generation marked the
                // connection as served switches future idle windows to
                // the short keep-alive deadline (handled in
                // after_write once the bytes are out).
            }
        }
    }

    /// Drop connections idle past their deadline (and, while draining,
    /// stragglers past the grace) without an answer.
    fn expire(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.deadline.is_some_and(|d| d <= now))
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.state.telemetry.connections_active.dec();
        }
    }
}
