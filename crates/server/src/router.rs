//! Routes HTTP requests onto the [`CampaignRegistry`].
//!
//! | method & path | action |
//! |---|---|
//! | `GET /healthz` | uptime, version, campaign counts by status |
//! | `GET /metrics` | observability plane (JSON; `?format=prometheus` for text) |
//! | `GET /campaigns?limit=..&offset=..` | fleet index (id, kind, status, generation), paginated |
//! | `POST /campaigns` | register a draft campaign (JSON spec body) |
//! | `POST /campaigns/quotes` | bulk: quote N observed states in one round trip |
//! | `POST /campaigns/observations` | bulk: report N observations in one round trip |
//! | `POST /campaigns/{id}/solve` | solve the draft, publish generation 1 |
//! | `GET /campaigns/{id}/price?remaining=..&interval=..` | quote a deadline campaign |
//! | `GET /campaigns/{id}/price?remaining=..&budget_cents=..` | quote a budget campaign |
//! | `POST /campaigns/{id}/observations` | report an interval / progress |
//! | `GET /campaigns/{id}` | status + diagnostics |
//! | `GET /campaigns/{id}/snapshot` | one campaign as a migratable snapshot document |
//! | `POST /campaigns/restore` | restore a snapshot document (receiving side of migration) |
//! | `DELETE /campaigns/{id}` | evict (tombstone) |
//! | `POST /admin/drain` | refuse mutations (503) ahead of a migration |
//! | `POST /admin/resume` | lift a drain |
//! | `GET /trace/recent?limit=..` | recently completed traces + slow exemplars |
//! | `GET /trace/{id}` | one completed trace as a span tree (JSON) |
//! | `GET /trace/export` | Chrome trace-event / Perfetto JSON dump |
//!
//! Request/response bodies are JSON. Campaign specs are flattened:
//! `{"kind": "deadline", "problem": {...}, "eps": 1e-9}` or
//! `{"kind": "budget", "problem": {...}}`, where `problem` is the
//! serde encoding of [`ft_core::DeadlineProblem`] /
//! [`ft_core::BudgetProblem`]. Structured [`PricingError`]s map to HTTP
//! statuses in [`status_for`].
//!
//! Every routed request is recorded into the shared metrics plane
//! (endpoint counter + latency histogram + status class) before the
//! response leaves [`handle`].

use crate::http::{Request, Response};
use crate::state::{AppState, Endpoint};
use ft_core::registry::{CampaignObservation, CampaignRegistry, CampaignSpec, ObservedState};
use ft_core::{BudgetProblem, CampaignId, DeadlineProblem, PricingError};
use serde::{map_get, Deserialize, Serialize, Value};

/// Map a structured pricing error onto an HTTP status code.
pub fn status_for(error: &PricingError) -> u16 {
    match error {
        PricingError::UnknownCampaign(_) => 404,
        PricingError::StateKindMismatch { .. } => 400,
        PricingError::InvalidProblem(_) => 400,
        PricingError::NotServable { .. } => 409,
        PricingError::Infeasible(_) => 422,
        PricingError::SearchFailed(_) => 500,
    }
}

fn ok(body: Value) -> Response {
    Response::json(
        200,
        serde_json::to_string(&body).expect("serialize response"),
    )
}

fn created(body: Value) -> Response {
    Response::json(
        201,
        serde_json::to_string(&body).expect("serialize response"),
    )
}

fn error_response(status: u16, kind: &str, message: &str) -> Response {
    let body = Value::Map(vec![
        ("error".into(), Value::Str(kind.into())),
        ("message".into(), Value::Str(message.into())),
    ]);
    Response::json(
        status,
        serde_json::to_string(&body).expect("serialize error"),
    )
}

fn error_kind(error: &PricingError) -> &'static str {
    match error {
        PricingError::Infeasible(_) => "infeasible",
        PricingError::SearchFailed(_) => "search_failed",
        PricingError::InvalidProblem(_) => "invalid_problem",
        PricingError::UnknownCampaign(_) => "unknown_campaign",
        PricingError::StateKindMismatch { .. } => "state_kind_mismatch",
        PricingError::NotServable { .. } => "not_servable",
    }
}

fn pricing_error(error: &PricingError) -> Response {
    error_response(status_for(error), error_kind(error), &error.to_string())
}

fn bad_request(message: &str) -> Response {
    error_response(400, "bad_request", message)
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Route one request: classify it **once** ([`Endpoint::classify`] is
/// the single routing table), dispatch onto the registry, and record
/// endpoint count, latency and status class into the metrics plane.
///
/// When the request carries an `x-ft-trace` id, a root span is opened
/// here (a no-op for callers like the reactor that already opened one
/// with queue-wait attribution) and the id is echoed on the response.
pub fn handle(state: &AppState, request: &Request) -> Response {
    let started = std::time::Instant::now();
    let root = ft_trace::begin_at(
        request.trace.unwrap_or(0),
        "server.request.serve",
        ft_trace::now_ns(),
    );
    let endpoint = Endpoint::classify(request);
    ft_trace::set_current_op(endpoint.label());
    let trace_id = ft_trace::current_trace_id();
    let mut response = dispatch(state, endpoint, request);
    state
        .telemetry
        .record(endpoint, response.status, started.elapsed(), trace_id);
    // Echo the trace id even in `trace-off` builds (propagation is a
    // wire contract; only recording compiles out).
    response.trace = request.trace.or(trace_id);
    drop(root);
    response
}

fn dispatch(state: &AppState, endpoint: Endpoint, request: &Request) -> Response {
    let registry = state.registry.as_ref();
    // A draining node refuses every mutation with a retryable 503: a
    // migrating router needs each campaign's generation and engine
    // state frozen while it snapshots. Reads and quotes keep serving
    // (quoting never advances a generation), so in-flight traffic
    // completes during the hand-off window.
    if state.draining() && mutates(endpoint) {
        return error_response(
            503,
            "draining",
            "node is draining for migration; retry against the fleet",
        );
    }
    match endpoint {
        Endpoint::Healthz => healthz(state),
        Endpoint::Metrics => metrics(state, request),
        Endpoint::CampaignsIndex => campaigns_index(registry, request),
        Endpoint::CampaignCreate => create_campaign(registry, request),
        Endpoint::CampaignReport => with_id(request, |id| report(registry, id)),
        Endpoint::CampaignDelete => with_id(request, |id| delete(registry, id)),
        Endpoint::CampaignSolve => with_id(request, |id| solve(registry, id)),
        Endpoint::CampaignPrice => with_id(request, |id| price(registry, id, request)),
        Endpoint::CampaignObserve => with_id(request, |id| observe(registry, id, request)),
        Endpoint::CampaignsQuotes => campaigns_quotes(registry, request),
        Endpoint::CampaignsObserve => campaigns_observe(registry, request),
        Endpoint::TraceRecent => trace_recent(request),
        Endpoint::TraceGet => trace_get(request),
        Endpoint::TraceExport => Response::json(200, ft_trace::export_chrome_json()),
        Endpoint::CampaignSnapshot => with_id(request, |id| snapshot(registry, id)),
        Endpoint::CampaignsRestore => restore(registry, request),
        Endpoint::AdminDrain => set_drain(state, true),
        Endpoint::AdminResume => set_drain(state, false),
        Endpoint::Other => fallback(request),
    }
}

/// Endpoints a draining node refuses (everything that can move a
/// campaign's state — including restores: a node being emptied must
/// not accept new residents).
fn mutates(endpoint: Endpoint) -> bool {
    matches!(
        endpoint,
        Endpoint::CampaignCreate
            | Endpoint::CampaignSolve
            | Endpoint::CampaignObserve
            | Endpoint::CampaignDelete
            | Endpoint::CampaignsObserve
            | Endpoint::CampaignsRestore
    )
}

/// Parse the `{id}` path segment (the classifier only checked the
/// shape) and run the handler, or answer 400.
fn with_id(request: &Request, handler: impl FnOnce(CampaignId) -> Response) -> Response {
    let id = request
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .nth(1)
        .unwrap_or("");
    match id.parse() {
        Ok(id) => handler(id),
        Err(_) => bad_request("campaign id must be an integer"),
    }
}

/// Requests no endpoint claims: distinguish a known path with the
/// wrong method from a path that doesn't exist at all.
fn fallback(request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["campaigns", _] => error_response(405, "method_not_allowed", "use GET or DELETE"),
        ["campaigns", _, _] => error_response(404, "not_found", "unknown campaign action"),
        _ => error_response(404, "not_found", "unknown route"),
    }
}

/// `GET /healthz` — liveness plus enough context to triage a page:
/// uptime, build version, and the fleet broken down by lifecycle
/// status.
fn healthz(state: &AppState) -> Response {
    let counts = state.registry.status_counts();
    // Keep the three fleet counts this server can report mutually
    // consistent: `campaigns_total` counts every record (tombstones
    // included, like `GET /campaigns`' `total` and the sum of the
    // by-status map); `campaigns_serving` excludes evicted ones.
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    let by_status: Vec<(String, Value)> = counts
        .iter()
        .map(|(status, count)| (status.as_str().to_string(), Value::Num(*count as f64)))
        .collect();
    ok(map(vec![
        (
            "status",
            Value::Str(if state.draining() { "draining" } else { "ok" }.into()),
        ),
        ("draining", Value::Bool(state.draining())),
        ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
        (
            "uptime_seconds",
            Value::Num(state.started.elapsed().as_secs_f64()),
        ),
        ("campaigns", Value::Map(by_status)),
        ("campaigns_total", Value::Num(total as f64)),
        ("campaigns_serving", Value::Num(state.registry.len() as f64)),
    ]))
}

/// `GET /campaigns/{id}/snapshot` — one campaign as a complete,
/// versioned snapshot document (the unit of migration: feed it to
/// `POST /campaigns/restore` on another node).
fn snapshot(registry: &CampaignRegistry, id: CampaignId) -> Response {
    match registry.campaign_to_json(id) {
        Ok(doc) => Response::json(200, doc),
        Err(e) => pricing_error(&e),
    }
}

/// `POST /campaigns/restore` — body is a snapshot document (any format
/// version ever written; single- or multi-campaign). Restored
/// campaigns resume at their exact persisted generation, replacing any
/// record already at the same id.
fn restore(registry: &CampaignRegistry, request: &Request) -> Response {
    match registry.restore_json(&request.body) {
        Ok(ids) => ok(map(vec![
            ("restored", Value::Num(ids.len() as f64)),
            (
                "ids",
                Value::Seq(ids.into_iter().map(|id| Value::Num(id as f64)).collect()),
            ),
        ])),
        Err(e) => pricing_error(&e),
    }
}

/// `POST /admin/drain` / `POST /admin/resume` — raise or lift the
/// migration drain. Idempotent; the response reports the new state.
fn set_drain(state: &AppState, draining: bool) -> Response {
    state.set_draining(draining);
    ok(map(vec![("draining", Value::Bool(draining))]))
}

/// `GET /metrics` — the whole observability plane (registry + HTTP
/// layer). JSON by default; `?format=prometheus` (or `format=text`)
/// switches to the text exposition format scrapers expect.
fn metrics(state: &AppState, request: &Request) -> Response {
    // `?buckets=1` adds each histogram's sparse bucket layer so an
    // aggregating front tier can merge distributions exactly instead of
    // averaging quantiles.
    let buckets = matches!(request.query("buckets"), Some("1") | Some("true"));
    match request.query("format") {
        Some("prometheus") | Some("text") => {
            Response::text(200, state.registry.metrics().to_prometheus())
        }
        None | Some("json") => ok(state.registry.metrics().to_value_with_buckets(buckets)),
        Some(other) => bad_request(&format!(
            "unknown format `{other}` (use json, prometheus or text)"
        )),
    }
}

/// `GET /trace/recent?limit=..` — the most recently completed traces
/// (newest first) plus the per-endpoint slow-trace exemplar index.
fn trace_recent(request: &Request) -> Response {
    let limit = match request.query("limit") {
        None => 32,
        Some(raw) => match raw.parse::<usize>() {
            Ok(limit) => limit,
            Err(_) => return bad_request("`limit` must be a non-negative integer"),
        },
    };
    Response::json(200, ft_trace::recent_json(limit))
}

/// `GET /trace/{id}` — fetch one completed trace by its 16-hex-digit
/// id (the value echoed in `x-ft-trace`). 404s cover both eviction
/// from the bounded store and ids that were never sampled.
fn trace_get(request: &Request) -> Response {
    let raw = request
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .nth(1)
        .unwrap_or("");
    let Some(id) = ft_trace::parse_trace_id(raw) else {
        return bad_request("trace id must be 1-16 hex digits");
    };
    match ft_trace::find_json(id) {
        Some(body) => Response::json(200, body),
        None => error_response(
            404,
            "not_found",
            "trace not stored (evicted or never sampled)",
        ),
    }
}

/// `GET /campaigns?limit=..&offset=..` — enumerate the fleet
/// (ascending id) without N point lookups. `offset` skips that many
/// records before `limit` applies, so a client can page through a
/// large fleet; `total` is the full record count and `offset` is
/// echoed back, so every page is self-describing. An offset past the
/// end is an empty page, not an error; malformed values are 400s.
fn campaigns_index(registry: &CampaignRegistry, request: &Request) -> Response {
    let ids = registry.ids();
    let limit = match request.query("limit") {
        None => ids.len(),
        Some(raw) => match raw.parse::<usize>() {
            Ok(limit) => limit,
            Err(_) => return bad_request("`limit` must be a non-negative integer"),
        },
    };
    let offset = match request.query("offset") {
        None => 0,
        Some(raw) => match raw.parse::<usize>() {
            Ok(offset) => offset,
            Err(_) => return bad_request("`offset` must be a non-negative integer"),
        },
    };
    let campaigns: Vec<Value> = ids
        .iter()
        .skip(offset)
        .take(limit)
        .filter_map(|&id| registry.report(id).ok())
        .map(|report| {
            map(vec![
                ("id", Value::Num(report.id as f64)),
                ("kind", Value::Str(report.kind.clone())),
                ("status", Value::Str(report.status.as_str().into())),
                ("generation", Value::Num(report.generation as f64)),
            ])
        })
        .collect();
    ok(map(vec![
        ("total", Value::Num(ids.len() as f64)),
        ("offset", Value::Num(offset as f64)),
        ("returned", Value::Num(campaigns.len() as f64)),
        ("campaigns", Value::Seq(campaigns)),
    ]))
}

fn parse_body(request: &Request) -> Result<Value, Response> {
    serde_json::from_str::<Value>(&request.body)
        .map_err(|e| bad_request(&format!("invalid JSON body: {e}")))
}

/// `POST /campaigns` — body `{"kind": "deadline"|"budget", "problem":
/// {...}, "eps": ...?, "id": ...?}`. The optional `id` registers (or
/// replaces) the campaign under a caller-chosen id — how a placing
/// front tier keeps one id space across N nodes.
fn create_campaign(registry: &CampaignRegistry, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let Some(fields) = body.as_map() else {
        return bad_request("campaign spec must be a JSON object");
    };
    let Ok(kind) = map_get(fields, "kind") else {
        return bad_request("missing `kind` (\"deadline\" or \"budget\")");
    };
    let Ok(problem) = map_get(fields, "problem") else {
        return bad_request("missing `problem`");
    };
    let spec = match kind.as_str() {
        Some("deadline") => {
            let problem = match DeadlineProblem::from_value(problem) {
                Ok(p) => p,
                Err(e) => return bad_request(&format!("bad deadline problem: {e}")),
            };
            // Non-finite or out-of-range eps falls through to
            // spec.validate() below and answers 400 — silently solving
            // at the default would mislead the client.
            let eps = match map_get(fields, "eps") {
                Ok(v) => match Option::<f64>::from_value(v) {
                    Ok(eps) => eps,
                    Err(e) => return bad_request(&format!("bad eps: {e}")),
                },
                Err(_) => None,
            };
            CampaignSpec::Deadline { problem, eps }
        }
        Some("budget") => {
            let problem = match BudgetProblem::from_value(problem) {
                Ok(p) => p,
                Err(e) => return bad_request(&format!("bad budget problem: {e}")),
            };
            CampaignSpec::Budget { problem }
        }
        _ => return bad_request("`kind` must be \"deadline\" or \"budget\""),
    };
    // Deserialization bypasses the constructors' invariants; reject bad
    // specs here with a 400 instead of letting solve() hit them.
    if let Err(e) = spec.validate() {
        return pricing_error(&e);
    }
    let id = match map_get(fields, "id") {
        Ok(v) => match CampaignId::from_value(v) {
            Ok(id) => {
                registry.register_at(id, spec);
                id
            }
            Err(e) => return bad_request(&format!("bad id: {e}")),
        },
        Err(_) => registry.register(spec),
    };
    created(map(vec![
        ("id", Value::Num(id as f64)),
        ("status", Value::Str("draft".into())),
    ]))
}

/// `POST /campaigns/{id}/solve` — solve the draft and publish
/// generation 1.
///
/// Wave semantics: the solve is admitted into the registry's
/// [`SolveScheduler`](ft_core::SolveScheduler) wave, so concurrent
/// solve requests (a fleet bootstrap, a recalibration storm) share one
/// pmf-row cache per 32-admission wave instead of each rebuilding its
/// own rows. This changes latency (cache-warm solves are cheaper),
/// never bits: the response is identical whether the wave was cold or
/// warm. The endpoint still blocks until *this* campaign's solve
/// completes — admission never waits for other wave members.
fn solve(registry: &CampaignRegistry, id: CampaignId) -> Response {
    match registry.solve(id) {
        Ok(generation) => ok(map(vec![
            ("id", Value::Num(id as f64)),
            ("status", Value::Str("live".into())),
            ("generation", Value::Num(generation.generation as f64)),
        ])),
        Err(e) => pricing_error(&e),
    }
}

/// `GET /campaigns/{id}/price?remaining=..&(interval|budget_cents)=..`
fn price(registry: &CampaignRegistry, id: CampaignId, request: &Request) -> Response {
    let Some(remaining) = request.query("remaining").and_then(|v| v.parse().ok()) else {
        return bad_request("missing or invalid `remaining`");
    };
    let state = match (request.query("interval"), request.query("budget_cents")) {
        (Some(interval), None) => match interval.parse() {
            Ok(interval) => ObservedState::Deadline {
                remaining,
                interval,
            },
            Err(_) => return bad_request("invalid `interval`"),
        },
        (None, Some(cents)) => match cents.parse() {
            Ok(budget_cents) => ObservedState::Budget {
                remaining,
                budget_cents,
            },
            Err(_) => return bad_request("invalid `budget_cents`"),
        },
        _ => {
            return bad_request(
                "pass exactly one of `interval` (deadline) or `budget_cents` (budget)",
            )
        }
    };
    match registry.quote(id, state) {
        Ok(quote) => ok(map(vec![
            ("id", Value::Num(id as f64)),
            ("price", Value::Num(quote.price)),
            ("generation", Value::Num(quote.generation as f64)),
        ])),
        Err(e) => pricing_error(&e),
    }
}

/// `POST /campaigns/{id}/observations` — body
/// `{"interval": t, "completions": k, "posted_cents": c?}` (deadline) or
/// `{"completions": k, "spent_cents": s, "posted_cents": c?,
/// "offers": o?}` (budget; `posted_cents` + `offers` carry the exposure
/// that feeds acceptance-drift recalibration).
fn observe(registry: &CampaignRegistry, id: CampaignId, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let Some(fields) = body.as_map() else {
        return bad_request("observation must be a JSON object");
    };
    match parse_observation(fields) {
        Ok(observation) => match registry.observe(id, observation) {
            Ok(outcome) => ok(outcome_value(id, &outcome)),
            Err(e) => pricing_error(&e),
        },
        Err(r) => r(""),
    }
}

/// The wire form of an [`ft_core::registry::ObserveOutcome`].
fn outcome_value(id: CampaignId, outcome: &ft_core::registry::ObserveOutcome) -> Value {
    map(vec![
        ("id", Value::Num(id as f64)),
        ("status", Value::Str(outcome.status.as_str().into())),
        ("generation", Value::Num(outcome.generation as f64)),
        ("correction", Value::Num(outcome.correction)),
        ("recalibrated", Value::Bool(outcome.recalibrated)),
        ("remaining", Value::Num(f64::from(outcome.remaining))),
    ])
}

/// Parse one observation object (the single-campaign body, minus the
/// path id). Shared by `POST /campaigns/{id}/observations` and the
/// bulk `POST /campaigns/observations`; the error arm is a deferred
/// 400 builder so bulk callers can prefix the failing item's index.
#[allow(clippy::type_complexity)]
fn parse_observation(
    fields: &[(String, Value)],
) -> Result<CampaignObservation, Box<dyn Fn(&str) -> Response>> {
    fn fail(message: String) -> Box<dyn Fn(&str) -> Response> {
        Box::new(move |at| bad_request(&format!("{at}{message}")))
    }
    let Ok(completions) = map_get(fields, "completions").and_then(u64::from_value) else {
        return Err(fail("missing or invalid `completions`".into()));
    };
    match (map_get(fields, "interval"), map_get(fields, "spent_cents")) {
        (Ok(interval), Err(_)) => {
            let Ok(interval) = usize::from_value(interval) else {
                return Err(fail("invalid `interval`".into()));
            };
            let posted = match map_get(fields, "posted_cents") {
                Ok(v) => match Option::<f64>::from_value(v) {
                    Ok(p) => p,
                    Err(e) => return Err(fail(format!("bad posted_cents: {e}"))),
                },
                Err(_) => None,
            };
            Ok(CampaignObservation::Deadline {
                interval,
                completions,
                posted,
            })
        }
        (Err(_), Ok(spent)) => {
            let Ok(spent_cents) = usize::from_value(spent) else {
                return Err(fail("invalid `spent_cents`".into()));
            };
            // Optional exposure fields feeding the acceptance-drift
            // recalibrator: how many workers saw the posted price.
            let posted = match map_get(fields, "posted_cents") {
                Ok(v) => match Option::<f64>::from_value(v) {
                    Ok(p) => p,
                    Err(e) => return Err(fail(format!("bad posted_cents: {e}"))),
                },
                Err(_) => None,
            };
            let offers = match map_get(fields, "offers") {
                Ok(v) => match Option::<u64>::from_value(v) {
                    Ok(o) => o,
                    Err(e) => return Err(fail(format!("bad offers: {e}"))),
                },
                Err(_) => None,
            };
            Ok(CampaignObservation::Budget {
                completions,
                spent_cents,
                posted,
                offers,
            })
        }
        _ => Err(fail(
            "pass exactly one of `interval` (deadline) or `spent_cents` (budget)".into(),
        )),
    }
}

/// How many items one bulk request may carry. Far above any sane
/// batch, low enough that a single request can't monopolise a worker
/// for seconds or balloon the response buffer.
const MAX_BULK_ITEMS: usize = 1024;

/// Pull the `items` array out of a bulk body, enforcing shape + cap.
fn bulk_items<'v>(body: &'v Value, key: &str) -> Result<&'v [Value], Response> {
    let Some(fields) = body.as_map() else {
        return Err(bad_request("bulk request must be a JSON object"));
    };
    let Ok(items) = map_get(fields, key) else {
        return Err(bad_request(&format!("missing `{key}` array")));
    };
    let Some(items) = items.as_seq() else {
        return Err(bad_request(&format!("`{key}` must be an array")));
    };
    if items.len() > MAX_BULK_ITEMS {
        return Err(bad_request(&format!(
            "`{key}` has {} items (max {MAX_BULK_ITEMS})",
            items.len()
        )));
    }
    Ok(items)
}

/// The `id` field every bulk item carries.
fn bulk_item_id(fields: &[(String, Value)], index: usize) -> Result<CampaignId, Response> {
    match map_get(fields, "id").and_then(CampaignId::from_value) {
        Ok(id) => Ok(id),
        Err(_) => Err(bad_request(&format!(
            "item {index}: missing or invalid `id`"
        ))),
    }
}

/// A per-item pricing failure, reported inline in a bulk response so
/// one bad item doesn't fail its siblings.
fn bulk_error_value(id: CampaignId, error: &PricingError) -> Value {
    let kind = error_kind(error);
    map(vec![
        ("id", Value::Num(id as f64)),
        ("error", Value::Str(kind.into())),
        ("message", Value::Str(error.to_string())),
        ("status", Value::Num(f64::from(status_for(error)))),
    ])
}

/// `POST /campaigns/quotes` — body `{"quotes": [{"id": .., "remaining":
/// .., "interval": ..|"budget_cents": ..}, ...]}`: N price quotes in
/// one round trip, answered by [`CampaignRegistry::quote_many`] (one
/// handle resolution per unique id). Malformed item *structure* fails
/// the whole request with a 400 naming the item; per-item *pricing*
/// errors come back inline so one exhausted campaign doesn't fail the
/// batch.
fn campaigns_quotes(registry: &CampaignRegistry, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let items = match bulk_items(&body, "quotes") {
        Ok(items) => items,
        Err(r) => return r,
    };
    let mut batch: Vec<(CampaignId, ObservedState)> = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let Some(fields) = item.as_map() else {
            return bad_request(&format!("item {index}: must be a JSON object"));
        };
        let id = match bulk_item_id(fields, index) {
            Ok(id) => id,
            Err(r) => return r,
        };
        let Ok(remaining) = map_get(fields, "remaining").and_then(u32::from_value) else {
            return bad_request(&format!("item {index}: missing or invalid `remaining`"));
        };
        let state = match (map_get(fields, "interval"), map_get(fields, "budget_cents")) {
            (Ok(interval), Err(_)) => match usize::from_value(interval) {
                Ok(interval) => ObservedState::Deadline {
                    remaining,
                    interval,
                },
                Err(_) => return bad_request(&format!("item {index}: invalid `interval`")),
            },
            (Err(_), Ok(cents)) => match usize::from_value(cents) {
                Ok(budget_cents) => ObservedState::Budget {
                    remaining,
                    budget_cents,
                },
                Err(_) => return bad_request(&format!("item {index}: invalid `budget_cents`")),
            },
            _ => {
                return bad_request(&format!(
                    "item {index}: pass exactly one of `interval` (deadline) or \
                     `budget_cents` (budget)"
                ))
            }
        };
        batch.push((id, state));
    }
    let results: Vec<Value> = registry
        .quote_many(&batch)
        .into_iter()
        .zip(&batch)
        .map(|(result, &(id, _))| match result {
            Ok(quote) => map(vec![
                ("id", Value::Num(id as f64)),
                ("price", Value::Num(quote.price)),
                ("generation", Value::Num(quote.generation as f64)),
            ]),
            Err(e) => bulk_error_value(id, &e),
        })
        .collect();
    ok(map(vec![
        ("count", Value::Num(results.len() as f64)),
        ("results", Value::Seq(results)),
    ]))
}

/// `POST /campaigns/observations` — body `{"observations": [{"id": ..,
/// ...single-observation fields...}, ...]}`: N observation reports in
/// one round trip via [`CampaignRegistry::observe_many`]. Same error
/// split as the bulk quote endpoint: structural problems are a
/// request-level 400 naming the item, pricing errors answer inline.
fn campaigns_observe(registry: &CampaignRegistry, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let items = match bulk_items(&body, "observations") {
        Ok(items) => items,
        Err(r) => return r,
    };
    let mut batch: Vec<(CampaignId, CampaignObservation)> = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let Some(fields) = item.as_map() else {
            return bad_request(&format!("item {index}: must be a JSON object"));
        };
        let id = match bulk_item_id(fields, index) {
            Ok(id) => id,
            Err(r) => return r,
        };
        match parse_observation(fields) {
            Ok(observation) => batch.push((id, observation)),
            Err(r) => return r(&format!("item {index}: ")),
        }
    }
    let ids: Vec<CampaignId> = batch.iter().map(|&(id, _)| id).collect();
    let results: Vec<Value> = registry
        .observe_many(batch)
        .into_iter()
        .zip(ids)
        .map(|(result, id)| match result {
            Ok(outcome) => outcome_value(id, &outcome),
            Err(e) => bulk_error_value(id, &e),
        })
        .collect();
    ok(map(vec![
        ("count", Value::Num(results.len() as f64)),
        ("results", Value::Seq(results)),
    ]))
}

fn report(registry: &CampaignRegistry, id: CampaignId) -> Response {
    match registry.report(id) {
        Ok(report) => {
            // CampaignReport derives Serialize; rewrite the status enum
            // tag to its lower-case wire form.
            let mut value = report.to_value();
            if let Value::Map(entries) = &mut value {
                for (key, v) in entries.iter_mut() {
                    if key == "status" {
                        *v = Value::Str(report.status.as_str().into());
                    }
                }
            }
            ok(value)
        }
        Err(e) => pricing_error(&e),
    }
}

fn delete(registry: &CampaignRegistry, id: CampaignId) -> Response {
    // Idempotent: deleting a tombstone is fine, an unknown id is 404.
    match registry.report(id) {
        Err(e) => pricing_error(&e),
        Ok(_) => {
            registry.evict(id);
            ok(map(vec![
                ("id", Value::Num(id as f64)),
                ("status", Value::Str("evicted".into())),
            ]))
        }
    }
}
