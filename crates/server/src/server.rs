//! The TCP front: a single **epoll reactor** thread multiplexing every
//! connection, feeding a fixed pool of handler threads through a
//! bounded ready-queue of parsed requests (std only — no async runtime
//! is available offline; see `reactor.rs` for the event loop and
//! `sys.rs` for the raw epoll bindings).
//!
//! Two designs preceded this one. Thread-per-connection meant a
//! connection flood grew the thread count without bound. The blocking
//! acceptor pool that replaced it fixed the thread count at
//! `1 + workers` but couldn't multiplex idle sockets: an idle
//! keep-alive client pinned a worker between requests, so keep-alive
//! idle windows had to stay short and every parked worker was capacity
//! lost. The reactor keeps the same thread count — one event-loop
//! thread plus `workers` handlers — while idle connections cost a
//! registered fd, not a thread, and a keep-alive client may pipeline
//! requests (responses come back in order).
//!
//! The overload contract is unchanged: in-flight requests are bounded
//! by `workers + queue_depth`, and a request that finds the
//! ready-queue full is answered `503 server_busy`. `ft-load`'s flood
//! phase and `tests/pool.rs` exercise exactly this. Connection
//! accounting flows into the shared metrics plane
//! (`ft_server_connections_{accepted,rejected}_total`,
//! `ft_server_connections_active`), and the queue hand-off latency is
//! measured as `ft_server_queue_wait_ns`.

use crate::reactor;
use crate::state::AppState;
use ft_core::registry::CampaignRegistry;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing and timeouts for the serving tier.
///
/// Handler threads are I/O-facing: the compute inside a request (a
/// campaign solve) dispatches onto the shared persistent `ft-exec`
/// pool rather than spawning its own threads, so `workers` HTTP
/// handlers never multiply into `workers × cores` solver threads. The
/// default sizing reads `ft_exec::available_threads()` — the same
/// `FT_EXEC_THREADS`-governed budget the pool uses — so one knob
/// bounds both sides and the handlers don't fight the pool for it.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Handler threads. The server's total thread count is `workers + 1`
    /// (the reactor) plus the shared `ft-exec` pool, regardless of how
    /// many clients connect.
    pub workers: usize,
    /// Parsed requests allowed to wait for a free worker before
    /// further requests are answered `503`. Together with `workers`
    /// this bounds the requests in flight.
    pub queue_depth: usize,
    /// Open connections the reactor will hold at once; connections
    /// accepted beyond this are answered `503` immediately (an fd
    /// budget, far above `queue_depth` by default — requests, not
    /// connections, are the contended resource now).
    pub max_connections: usize,
    /// How long the *first* request on a connection may take to arrive
    /// (slow-client allowance). The window restarts whenever bytes
    /// arrive, so a trickling sender is bounded per burst, not
    /// end-to-end.
    pub first_request_timeout: Duration,
    /// How long an established keep-alive connection may sit silent
    /// between requests. An idle connection costs only an fd under the
    /// reactor, but idle-forever sockets still leak fds — this bounds
    /// them.
    pub keep_alive_timeout: Duration,
    /// Freshness bound for histogram quantiles in `GET /metrics`
    /// exports: within this window, repeated scrapes reuse each
    /// histogram's merged snapshot instead of re-walking every shard
    /// bucket (counters and gauges always read live). Zero disables
    /// the cache; the default (250 ms) bounds the cost of several
    /// concurrent collectors without visible staleness at human or
    /// scraper timescales.
    pub metrics_export_cache: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: ft_exec::available_threads().clamp(2, 16),
            queue_depth: 128,
            max_connections: 4096,
            first_request_timeout: Duration::from_secs(30),
            keep_alive_timeout: Duration::from_secs(5),
            metrics_export_cache: Duration::from_millis(250),
        }
    }
}

/// An HTTP server bound to a socket, not yet serving.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Remote control for a running server: its bound address and a
/// shutdown trigger.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the reactor to exit; idempotent. Returns once the flag is
    /// set (the loop notices on its next wakeup).
    pub fn shutdown(&self) {
        // ORDERING: Release pairs with the Acquire loads in the
        // reactor loop and its workers — whatever the caller settled
        // before asking for shutdown is visible to the drain path.
        self.shutdown.store(true, Ordering::Release);
        // Poke the listener so a parked epoll_wait wakes up.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) with the
    /// default sizing.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
    ) -> std::io::Result<Self> {
        Self::bind_with(addr, registry, ServerConfig::default())
    }

    /// Bind with explicit sizing.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        registry
            .metrics()
            .set_export_cache_ttl(config.metrics_export_cache);
        Ok(Self {
            listener,
            state: Arc::new(AppState::new(registry)),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serve until [`ServerHandle::shutdown`] is called. The calling
    /// thread becomes the event loop; `config.workers` handler threads
    /// are spawned scoped inside. Returns after every already-parsed
    /// request has been answered — promptly: on shutdown the reactor
    /// stops accepting, drops idle keep-alive connections immediately,
    /// flushes in-flight responses, and force-drops stragglers after a
    /// short grace.
    pub fn serve(self) {
        reactor::run(self.listener, self.state, self.config, self.shutdown);
    }

    /// Bind + serve on a background thread; returns the handle and the
    /// serving thread (join it after `shutdown()` for a clean exit).
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
    ) -> std::io::Result<(ServerHandle, JoinHandle<()>)> {
        Self::spawn_with(addr, registry, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit sizing.
    pub fn spawn_with<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<(ServerHandle, JoinHandle<()>)> {
        let server = Self::bind_with(addr, registry, config)?;
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        Ok((handle, join))
    }
}
