//! The TCP front: one acceptor feeding a **fixed pool** of handler
//! threads through a **bounded connection queue** (std only — no async
//! runtime is available offline).
//!
//! The previous design spawned a thread per connection, so a
//! connection flood meant an unbounded thread count. Now the thread
//! count is `1 + workers`, period: the acceptor enqueues sockets, the
//! pool drains them, and when the queue is full new connections are
//! answered `503 server_busy` and closed — the flood gets a clean,
//! cheap rejection instead of an OOM. `ft-load`'s flood phase and
//! `tests/pool.rs` exercise exactly this.
//!
//! **Keep-alive tradeoff**: a blocking pool can't multiplex idle
//! sockets, so a connection holds its worker between requests. The
//! first request on a connection gets `IDLE_READ_TIMEOUT` (slow
//! clients), but *subsequent* keep-alive waits get only
//! `KEEP_ALIVE_IDLE_TIMEOUT` — an idle keep-alive client can pin a
//! worker for at most that long before the connection is closed and
//! the worker returns to the queue. Queued connections therefore wait
//! at most a few seconds behind idle keep-alives, never the full 30 s.
//!
//! Connection accounting flows into the shared metrics plane
//! (`ft_server_connections_{accepted,rejected}_total`,
//! `ft_server_connections_active`).

use crate::http::{read_request, write_response, Response};
use crate::router;
use crate::state::AppState;
use ft_core::registry::CampaignRegistry;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the *first* request on a connection may take to arrive
/// (slow-client allowance).
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How long an established keep-alive connection may sit silent
/// between requests. Deliberately short: while a worker waits here it
/// can serve nobody else, so this bounds how long an idle keep-alive
/// client can starve the queue (see the module docs).
const KEEP_ALIVE_IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// Sizing for the acceptor pool.
///
/// Handler threads are I/O-facing: the compute inside a request (a
/// campaign solve) dispatches onto the shared persistent `ft-exec`
/// pool rather than spawning its own threads, so `workers` HTTP
/// handlers never multiply into `workers × cores` solver threads. The
/// default sizing reads `ft_exec::available_threads()` — the same
/// `FT_EXEC_THREADS`-governed budget the pool uses — so one knob
/// bounds both sides and the handlers don't fight the pool for it.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Handler threads. The server's total thread count is `workers + 1`
    /// (the acceptor) plus the shared `ft-exec` pool, regardless of how
    /// many clients connect.
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker before
    /// new ones are rejected with `503`.
    pub queue_depth: usize,
    /// Freshness bound for histogram quantiles in `GET /metrics`
    /// exports: within this window, repeated scrapes reuse each
    /// histogram's merged snapshot instead of re-walking every shard
    /// bucket (counters and gauges always read live). Zero disables
    /// the cache; the default (250 ms) bounds the cost of several
    /// concurrent collectors without visible staleness at human or
    /// scraper timescales.
    pub metrics_export_cache: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: ft_exec::available_threads().clamp(2, 16),
            queue_depth: 128,
            metrics_export_cache: Duration::from_millis(250),
        }
    }
}

/// The bounded hand-off between the acceptor and the worker pool.
struct ConnectionQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    capacity: usize,
}

struct QueueInner {
    queue: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnectionQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue unless full or closed; returns the stream back on
    /// rejection so the acceptor can answer 503.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().expect("connection queue poisoned");
        if inner.closed || inner.queue.len() >= self.capacity {
            return Err(stream);
        }
        inner.queue.push_back(stream);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop. `None` only after `close()` *and* the queue has
    /// drained — already-accepted connections are served, not dropped.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("connection queue poisoned");
        loop {
            if let Some(stream) = inner.queue.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .expect("connection queue poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("connection queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

/// The connections currently held by workers, so shutdown can unpark
/// readers instead of waiting out their idle timeout.
#[derive(Default)]
struct ActiveConnections {
    streams: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_token: std::sync::atomic::AtomicU64,
}

impl ActiveConnections {
    /// Track a clone of the worker's stream; `None` if cloning failed
    /// (the connection still gets served, it just can't be unparked).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.streams
            .lock()
            .expect("active connections poisoned")
            .insert(token, clone);
        Some(token)
    }

    fn deregister(&self, token: Option<u64>) {
        if let Some(token) = token {
            self.streams
                .lock()
                .expect("active connections poisoned")
                .remove(&token);
        }
    }

    /// Shut down the **read** half of every held connection: a worker
    /// parked in `read_request` sees EOF and exits cleanly, while an
    /// in-flight response write still completes.
    fn shutdown_reads(&self) {
        for stream in self
            .streams
            .lock()
            .expect("active connections poisoned")
            .values()
        {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// An HTTP server bound to a socket, not yet serving.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Remote control for a running server: its bound address and a
/// shutdown trigger.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit; idempotent. Returns once the flag is
    /// set (the loop notices on its next wakeup).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Poke the listener so a blocked accept wakes up.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) with the
    /// default pool sizing.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
    ) -> std::io::Result<Self> {
        Self::bind_with(addr, registry, ServerConfig::default())
    }

    /// Bind with explicit pool sizing.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        registry
            .metrics()
            .set_export_cache_ttl(config.metrics_export_cache);
        Ok(Self {
            listener,
            state: Arc::new(AppState::new(registry)),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serve until [`ServerHandle::shutdown`] is called, with a fixed
    /// pool of `config.workers` handler threads. Returns after the
    /// workers have drained every already-accepted connection —
    /// promptly: on shutdown the read side of every parked keep-alive
    /// connection is shut down, so no worker sits out the 30 s idle
    /// timeout before exiting.
    pub fn serve(self) {
        let queue = ConnectionQueue::new(self.config.queue_depth);
        let active = ActiveConnections::default();
        let workers = self.config.workers.max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let queue = &queue;
                let state = &self.state;
                let active = &active;
                let closing = &*self.shutdown;
                s.spawn(move || {
                    while let Some(stream) = queue.pop() {
                        let token = active.register(&stream);
                        // Checked *after* registering: if a concurrent
                        // shutdown_reads() ran before our stream was in
                        // the registry, the closing flag (set first) is
                        // already visible and the short timeout bounds
                        // the wait it would otherwise have unparked.
                        // A connection popped after shutdown still gets
                        // its pending requests answered, but must not
                        // park the worker waiting for more.
                        if closing.load(Ordering::Acquire) {
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                        }
                        state.telemetry.connections_active.inc();
                        handle_connection(stream, state, closing);
                        state.telemetry.connections_active.dec();
                        active.deregister(token);
                    }
                });
            }
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let stream = match stream {
                    Ok(stream) => stream,
                    Err(_) => {
                        // Transient accept errors (EMFILE under connection
                        // floods, ECONNABORTED) must not busy-spin the
                        // acceptor; back off briefly and retry.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                };
                let _ = stream.set_read_timeout(Some(IDLE_READ_TIMEOUT));
                self.state.telemetry.connections_accepted.inc();
                if let Err(stream) = queue.try_push(stream) {
                    self.state.telemetry.connections_rejected.inc();
                    reject_busy(stream);
                }
            }
            queue.close();
            // Kick workers parked in read on idle keep-alive
            // connections: an EOF on the read half lets them finish
            // their current response and exit now, not at the idle
            // timeout.
            active.shutdown_reads();
        });
    }

    /// Bind + serve on a background thread; returns the handle and the
    /// serving thread (join it after `shutdown()` for a clean exit).
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
    ) -> std::io::Result<(ServerHandle, JoinHandle<()>)> {
        Self::spawn_with(addr, registry, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit pool sizing.
    pub fn spawn_with<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<(ServerHandle, JoinHandle<()>)> {
        let server = Self::bind_with(addr, registry, config)?;
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        Ok((handle, join))
    }
}

/// Answer an over-capacity connection with a quick 503 and close it.
/// Runs on the acceptor thread, so the write is bounded by a short
/// timeout — a client that won't read can't stall the accept loop.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut writer = BufWriter::new(stream);
    let _ = write_response(
        &mut writer,
        &Response::json(
            503,
            "{\"error\":\"server_busy\",\"message\":\"connection queue full, retry\"}".to_string(),
        ),
        false,
    );
}

fn handle_connection(stream: TcpStream, state: &AppState, closing: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // client closed (or shutdown unparked us)
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle timeout: drop the connection without an answer.
                return;
            }
            Err(_) => {
                // Malformed request: answer 400 and drop the connection.
                let _ = write_response(
                    &mut writer,
                    &Response::json(
                        400,
                        "{\"error\":\"bad_request\",\"message\":\"malformed HTTP request\"}"
                            .to_string(),
                    ),
                    false,
                );
                return;
            }
        };
        let response = router::handle(state, &request);
        // During shutdown, answer the request in hand but decline the
        // keep-alive so the worker can exit.
        let keep_alive = request.keep_alive && !closing.load(Ordering::Acquire);
        if write_response(&mut writer, &response, keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
        // Between requests the worker can serve nobody else; bound how
        // long an idle keep-alive client may hold it (module docs).
        let _ = writer
            .get_ref()
            .set_read_timeout(Some(KEEP_ALIVE_IDLE_TIMEOUT));
    }
}
