//! The TCP front: a blocking accept loop with one handler thread per
//! connection (std only — no async runtime is available offline, and
//! the reprice hot path is a table lookup, so a thread per connection
//! with keep-alive amortises spawns well enough for the workloads the
//! bench snapshot covers).

use crate::http::{read_request, write_response, Response};
use crate::router;
use ft_core::registry::CampaignRegistry;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a keep-alive connection may sit silent before its handler
/// thread gives up on it.
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// An HTTP server bound to a socket, not yet serving.
pub struct Server {
    listener: TcpListener,
    registry: Arc<CampaignRegistry>,
    shutdown: Arc<AtomicBool>,
}

/// Remote control for a running server: its bound address and a
/// shutdown trigger.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit; idempotent. Returns once the flag is
    /// set (the loop notices on its next wakeup).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Poke the listener so a blocked accept wakes up.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            registry,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serve until [`ServerHandle::shutdown`] is called. Each connection
    /// gets its own handler thread; requests on it are answered in order
    /// with keep-alive. An idle-read timeout bounds how long a silent
    /// connection can pin its thread (slow-loris guard); a fixed
    /// acceptor pool for hard connection caps is a ROADMAP item.
    pub fn serve(self) {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Transient accept errors (EMFILE under connection
                    // floods, ECONNABORTED) must not busy-spin the
                    // acceptor; back off briefly and retry.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            let _ = stream.set_read_timeout(Some(IDLE_READ_TIMEOUT));
            let registry = Arc::clone(&self.registry);
            std::thread::spawn(move || handle_connection(stream, &registry));
        }
    }

    /// Bind + serve on a background thread; returns the handle and the
    /// serving thread (join it after `shutdown()` for a clean exit).
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<CampaignRegistry>,
    ) -> std::io::Result<(ServerHandle, JoinHandle<()>)> {
        let server = Self::bind(addr, registry)?;
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        Ok((handle, join))
    }
}

fn handle_connection(stream: TcpStream, registry: &CampaignRegistry) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // client closed
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle timeout: drop the connection without an answer.
                return;
            }
            Err(_) => {
                // Malformed request: answer 400 and drop the connection.
                let _ = write_response(
                    &mut writer,
                    &Response::json(
                        400,
                        "{\"error\":\"bad_request\",\"message\":\"malformed HTTP request\"}"
                            .to_string(),
                    ),
                    false,
                );
                return;
            }
        };
        let response = router::handle(registry, &request);
        if write_response(&mut writer, &response, request.keep_alive).is_err() {
            return;
        }
        if !request.keep_alive {
            return;
        }
    }
}
