//! Shared per-server state: the registry handle, start time, and the
//! HTTP layer's pre-resolved instruments in the same metrics plane the
//! registry reports into (so one `GET /metrics` covers both).

use crate::http::Request;
use ft_core::registry::CampaignRegistry;
use ft_metrics::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The routes the server distinguishes in its metrics. `Other` absorbs
/// unknown paths so a URL-scanning client can't mint unbounded metric
/// names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Healthz,
    Metrics,
    CampaignsIndex,
    CampaignCreate,
    CampaignSolve,
    CampaignPrice,
    CampaignObserve,
    CampaignReport,
    CampaignDelete,
    /// `POST /campaigns/quotes` — N price quotes in one round trip.
    CampaignsQuotes,
    /// `POST /campaigns/observations` — N observations in one round trip.
    CampaignsObserve,
    /// `GET /trace/recent` — recently completed traces + exemplar index.
    TraceRecent,
    /// `GET /trace/{id}` — one completed trace as a span tree.
    TraceGet,
    /// `GET /trace/export` — Chrome trace-event / Perfetto JSON dump.
    TraceExport,
    /// `GET /campaigns/{id}/snapshot` — one campaign as a migratable
    /// snapshot document.
    CampaignSnapshot,
    /// `POST /campaigns/restore` — restore a snapshot document into the
    /// live registry (the receiving side of a migration).
    CampaignsRestore,
    /// `POST /admin/drain` — stop accepting mutations ahead of a
    /// migration off this node.
    AdminDrain,
    /// `POST /admin/resume` — lift a drain.
    AdminResume,
    Other,
}

impl Endpoint {
    pub const ALL: [Endpoint; 19] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::CampaignsIndex,
        Endpoint::CampaignCreate,
        Endpoint::CampaignSolve,
        Endpoint::CampaignPrice,
        Endpoint::CampaignObserve,
        Endpoint::CampaignReport,
        Endpoint::CampaignDelete,
        Endpoint::CampaignsQuotes,
        Endpoint::CampaignsObserve,
        Endpoint::TraceRecent,
        Endpoint::TraceGet,
        Endpoint::TraceExport,
        Endpoint::CampaignSnapshot,
        Endpoint::CampaignsRestore,
        Endpoint::AdminDrain,
        Endpoint::AdminResume,
        Endpoint::Other,
    ];

    /// The `endpoint` label value in metric names.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::CampaignsIndex => "campaigns_index",
            Endpoint::CampaignCreate => "campaign_create",
            Endpoint::CampaignSolve => "campaign_solve",
            Endpoint::CampaignPrice => "campaign_price",
            Endpoint::CampaignObserve => "campaign_observe",
            Endpoint::CampaignReport => "campaign_report",
            Endpoint::CampaignDelete => "campaign_delete",
            Endpoint::CampaignsQuotes => "campaigns_quotes",
            Endpoint::CampaignsObserve => "campaigns_observations",
            Endpoint::TraceRecent => "trace_recent",
            Endpoint::TraceGet => "trace_get",
            Endpoint::TraceExport => "trace_export",
            Endpoint::CampaignSnapshot => "campaign_snapshot",
            Endpoint::CampaignsRestore => "campaigns_restore",
            Endpoint::AdminDrain => "admin_drain",
            Endpoint::AdminResume => "admin_resume",
            Endpoint::Other => "other",
        }
    }

    /// Classify a request by method + path shape (the same shapes the
    /// router dispatches on).
    pub fn classify(request: &Request) -> Endpoint {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Endpoint::Healthz,
            ("GET", ["metrics"]) => Endpoint::Metrics,
            ("GET", ["campaigns"]) => Endpoint::CampaignsIndex,
            ("POST", ["campaigns"]) => Endpoint::CampaignCreate,
            // Bulk routes shadow the `{id}` shapes: "quotes",
            // "observations" and "restore" are not valid campaign ids,
            // so nothing is lost.
            ("POST", ["campaigns", "quotes"]) => Endpoint::CampaignsQuotes,
            ("POST", ["campaigns", "observations"]) => Endpoint::CampaignsObserve,
            ("POST", ["campaigns", "restore"]) => Endpoint::CampaignsRestore,
            ("POST", ["admin", "drain"]) => Endpoint::AdminDrain,
            ("POST", ["admin", "resume"]) => Endpoint::AdminResume,
            // The named trace routes shadow the `{id}` shape, like the
            // bulk campaign routes above.
            ("GET", ["trace", "recent"]) => Endpoint::TraceRecent,
            ("GET", ["trace", "export"]) => Endpoint::TraceExport,
            ("GET", ["trace", _]) => Endpoint::TraceGet,
            ("GET", ["campaigns", _]) => Endpoint::CampaignReport,
            ("DELETE", ["campaigns", _]) => Endpoint::CampaignDelete,
            ("GET", ["campaigns", _, "snapshot"]) => Endpoint::CampaignSnapshot,
            ("POST", ["campaigns", _, "solve"]) => Endpoint::CampaignSolve,
            ("GET", ["campaigns", _, "price"]) => Endpoint::CampaignPrice,
            ("POST", ["campaigns", _, "observations"]) => Endpoint::CampaignObserve,
            _ => Endpoint::Other,
        }
    }
}

/// The HTTP layer's instruments, pre-resolved per endpoint.
pub struct ServerTelemetry {
    requests: Vec<Arc<Counter>>,
    latency: Vec<Arc<Histogram>>,
    class_2xx: Arc<Counter>,
    class_4xx: Arc<Counter>,
    class_5xx: Arc<Counter>,
    pub connections_accepted: Arc<Counter>,
    pub connections_rejected: Arc<Counter>,
    pub connections_active: Arc<Gauge>,
    /// Ready-queue hand-off latency: time from a request being parsed
    /// on the reactor to a worker picking it up. Separates tier wait
    /// from handler latency in `/metrics`.
    pub queue_wait: Arc<Histogram>,
}

impl ServerTelemetry {
    fn new(metrics: &ft_metrics::MetricsRegistry) -> Self {
        let requests = Endpoint::ALL
            .iter()
            .map(|e| {
                metrics.counter(&format!(
                    "ft_server_requests_total{{endpoint=\"{}\"}}",
                    e.label()
                ))
            })
            .collect();
        let latency = Endpoint::ALL
            .iter()
            .map(|e| {
                metrics.histogram(&format!(
                    "ft_server_request_ns{{endpoint=\"{}\"}}",
                    e.label()
                ))
            })
            .collect();
        Self {
            requests,
            latency,
            class_2xx: metrics.counter("ft_server_responses_total{class=\"2xx\"}"),
            class_4xx: metrics.counter("ft_server_responses_total{class=\"4xx\"}"),
            class_5xx: metrics.counter("ft_server_responses_total{class=\"5xx\"}"),
            connections_accepted: metrics.counter("ft_server_connections_accepted_total"),
            connections_rejected: metrics.counter("ft_server_connections_rejected_total"),
            connections_active: metrics.gauge("ft_server_connections_active"),
            queue_wait: metrics.histogram("ft_server_queue_wait_ns"),
        }
    }

    /// Record one routed request: endpoint count, latency, status
    /// class — and, when the request was traced, offer its latency as
    /// the endpoint histogram's tail exemplar so `/metrics` can point
    /// at an openable trace.
    pub fn record(
        &self,
        endpoint: Endpoint,
        status: u16,
        elapsed: std::time::Duration,
        trace: Option<u64>,
    ) {
        let i = Endpoint::ALL
            .iter()
            .position(|e| *e == endpoint)
            .expect("endpoint in ALL");
        self.requests[i].inc();
        self.latency[i].record_duration(elapsed);
        if let Some(trace_id) = trace {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            self.latency[i].offer_exemplar(ns, trace_id);
        }
        match status {
            200..=299 => self.class_2xx.inc(),
            500..=599 => self.class_5xx.inc(),
            _ => self.class_4xx.inc(),
        }
    }
}

/// Everything a handler thread needs: built once per server.
pub struct AppState {
    pub registry: Arc<CampaignRegistry>,
    pub telemetry: ServerTelemetry,
    pub started: Instant,
    /// Set by `POST /admin/drain`: mutations are refused with 503 so a
    /// migrating router can snapshot every campaign at a generation
    /// that will not move underneath it. Reads and quotes keep serving.
    draining: AtomicBool,
}

impl AppState {
    pub fn new(registry: Arc<CampaignRegistry>) -> Self {
        let telemetry = ServerTelemetry::new(registry.metrics());
        // Mirror the executor's internal counters (steals, deque
        // overflows) onto the same metrics plane the registry reports
        // into, so one `GET /metrics` covers HTTP, solver, and pool.
        // Latest-wins inside ft-exec, so a test server taking over the
        // export is fine.
        ft_exec::register_metrics(registry.metrics());
        Self {
            registry,
            telemetry,
            started: Instant::now(),
            draining: AtomicBool::new(false),
        }
    }

    pub fn draining(&self) -> bool {
        // ORDERING: Acquire pairs with the Release in `set_draining` —
        // a handler that observes the flag also observes everything the
        // drainer settled before raising it.
        self.draining.load(Ordering::Acquire)
    }

    pub fn set_draining(&self, draining: bool) {
        // ORDERING: Release pairs with the Acquire in `draining` —
        // handlers that observe the flag observe the drainer's writes.
        self.draining.store(draining, Ordering::Release);
    }
}
