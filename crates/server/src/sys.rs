//! Raw Linux `epoll` bindings — the only platform interface the
//! reactor needs, declared directly against libc (which `std` already
//! links on Linux) so the event loop stays std-only with **no new
//! dependencies**. Everything is wrapped in a safe [`Epoll`] handle
//! that owns the epoll fd and translates errnos into `io::Error`.
//!
//! Only the level of the API the reactor uses is bound: create, add /
//! delete an interest, and wait. Registration is edge-triggered
//! (`EPOLLET`) at the connection call sites; this module does not
//! impose it.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never registered.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`) — always reported, never registered.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery (`EPOLLET`).
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs
/// it (no padding between `events` and `data`); other architectures
/// use natural C layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

impl EpollEvent {
    pub fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }

    /// Copy out of the (possibly packed) struct; reading the fields of
    /// a packed struct by reference is UB-adjacent, so go through
    /// copies.
    pub fn readiness(&self) -> (u32, u64) {
        let events = self.events;
        let data = self.data;
        (events, data)
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` for `events`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Remove a registration. (Closing the fd removes it too; this is
    /// for fds that stay open, like a deregistered listener.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL (and may be null on
        // modern kernels) but pre-2.6.9 kernels required it non-null;
        // passing a zeroed one costs nothing.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness. `timeout: None` blocks indefinitely; a zero
    /// timeout polls. Sub-millisecond timeouts round **up** so a
    /// near-deadline wait cannot spin at 0 ms. `Ok(0)` on timeout or
    /// `EINTR` — callers always recompute state after waking.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                ms.min(i32::MAX as u128) as i32
            }
        };
        let max = events.len().min(i32::MAX as usize) as i32;
        // SAFETY: `events` is a valid writable buffer of `max` entries.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and nothing else closes it.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn wait_times_out_and_reports_readiness() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        epoll
            .add(a.as_raw_fd(), 7, EPOLLIN | EPOLLET)
            .expect("epoll_ctl add");

        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing readable yet: times out empty.
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);

        b.write_all(b"x").expect("write");
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);
        let (readiness, token) = events[0].readiness();
        assert_eq!(token, 7);
        assert_ne!(readiness & EPOLLIN, 0);

        epoll.delete(a.as_raw_fd()).expect("epoll_ctl del");
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn fresh_socket_reports_writable() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, _b) = UnixStream::pair().expect("socketpair");
        epoll
            .add(a.as_raw_fd(), 1, EPOLLOUT | EPOLLET)
            .expect("add");
        let mut events = [EpollEvent::zeroed(); 4];
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);
        let (readiness, _) = events[0].readiness();
        assert_ne!(readiness & EPOLLOUT, 0);
    }
}
