//! The batched quote / observation API over a real socket:
//! `POST /campaigns/quotes` answers N price lookups in one round trip
//! (mixed campaign kinds, inline per-item errors), and
//! `POST /campaigns/observations` batches telemetry reports the same
//! way. Structural errors name the offending item and fail the whole
//! request; pricing errors ride inline so one bad item can't sink its
//! siblings.

use ft_core::registry::CampaignRegistry;
use ft_core::{ActionSet, BudgetProblem, DeadlineProblem, PenaltyModel};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use ft_server::Server;
use serde::{map_get, Serialize, Value};
use std::net::SocketAddr;
use std::sync::Arc;

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, body) = ft_server::client::request(addr, method, path, body).expect("request");
    (status, serde_json::from_str::<Value>(&body).expect("json"))
}

fn num(value: &Value, key: &str) -> f64 {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_num()
        .unwrap_or_else(|| panic!("{key} not a number in {value:?}"))
}

fn text<'v>(value: &'v Value, key: &str) -> &'v str {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_str()
        .unwrap_or_else(|| panic!("{key} not a string in {value:?}"))
}

fn results(body: &Value) -> &[Value] {
    map_get(body.as_map().expect("object"), "results")
        .expect("results")
        .as_seq()
        .expect("results array")
}

/// Spin up a server with one solved deadline campaign and one solved
/// budget campaign; returns `(addr, deadline_id, budget_id, ...)`.
fn serve_two_kinds() -> (
    SocketAddr,
    u64,
    u64,
    ft_server::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let registry = Arc::new(CampaignRegistry::new());
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    let deadline = DeadlineProblem::from_market(
        20,
        4.0,
        12,
        &ConstantRate::new(150.0),
        PriceGrid::new(0, 20),
        &LogitAcceptance::new(4.0, 0.0, 30.0),
        PenaltyModel::Linear { per_task: 500.0 },
    );
    let spec = format!(
        "{{\"kind\":\"deadline\",\"problem\":{}}}",
        serde_json::to_string(&deadline.to_value()).expect("json")
    );
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
    assert_eq!(status, 201);
    let deadline_id = num(&body, "id") as u64;

    let acc = LogitAcceptance::new(4.0, 0.0, 20.0);
    let budget = BudgetProblem::new(
        10,
        60.0,
        ActionSet::from_grid(PriceGrid::new(1, 12), &acc),
        100.0,
    );
    let spec = format!(
        "{{\"kind\":\"budget\",\"problem\":{}}}",
        serde_json::to_string(&budget.to_value()).expect("json")
    );
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
    assert_eq!(status, 201);
    let budget_id = num(&body, "id") as u64;

    for id in [deadline_id, budget_id] {
        let (status, _) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
        assert_eq!(status, 200);
    }
    (addr, deadline_id, budget_id, handle, join)
}

#[test]
fn bulk_quotes_mix_kinds_and_report_errors_inline() {
    let (addr, deadline_id, budget_id, handle, join) = serve_two_kinds();

    // The batch mixes kinds, repeats a campaign, and includes an
    // unknown id — which must fail inline, not fail the request.
    let body = format!(
        "{{\"quotes\":[\
         {{\"id\":{deadline_id},\"remaining\":20,\"interval\":0}},\
         {{\"id\":{budget_id},\"remaining\":10,\"budget_cents\":60}},\
         {{\"id\":{deadline_id},\"remaining\":10,\"interval\":3}},\
         {{\"id\":999,\"remaining\":1,\"interval\":0}}\
         ]}}"
    );
    let (status, reply) = request(addr, "POST", "/campaigns/quotes", Some(&body));
    assert_eq!(status, 200, "bulk quote failed: {reply:?}");
    assert_eq!(num(&reply, "count"), 4.0);
    let items = results(&reply);

    // Successful items match the single-quote endpoint exactly.
    let (_, single) = request(
        addr,
        "GET",
        &format!("/campaigns/{deadline_id}/price?remaining=20&interval=0"),
        None,
    );
    assert_eq!(num(&items[0], "price"), num(&single, "price"));
    assert_eq!(num(&items[0], "generation"), num(&single, "generation"));
    assert!(num(&items[1], "price") >= 1.0);
    assert_eq!(num(&items[2], "id"), deadline_id as f64);

    // The unknown id answers inline with its would-be status.
    assert_eq!(num(&items[3], "id"), 999.0);
    assert_eq!(text(&items[3], "error"), "unknown_campaign");
    assert_eq!(num(&items[3], "status"), 404.0);

    // The registry counted every quote attempt (4 bulk + 1 single).
    let (_, metrics) = request(addr, "GET", "/metrics", None);
    assert_eq!(num(&metrics, "ft_core_quotes_total"), 5.0);
    assert_eq!(num(&metrics, "ft_core_quote_errors_total"), 1.0);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn bulk_quote_structural_errors_name_the_item() {
    let (addr, deadline_id, _, handle, join) = serve_two_kinds();

    // Missing `remaining` on item 1 → request-level 400 naming it.
    let body = format!(
        "{{\"quotes\":[\
         {{\"id\":{deadline_id},\"remaining\":5,\"interval\":0}},\
         {{\"id\":{deadline_id},\"interval\":0}}\
         ]}}"
    );
    let (status, reply) = request(addr, "POST", "/campaigns/quotes", Some(&body));
    assert_eq!(status, 400);
    assert!(
        text(&reply, "message").contains("item 1"),
        "400 does not name the item: {reply:?}"
    );

    // Both-kinds item → 400 naming the exactly-one-of rule.
    let body = format!(
        "{{\"quotes\":[{{\"id\":{deadline_id},\"remaining\":5,\"interval\":0,\"budget_cents\":9}}]}}"
    );
    let (status, reply) = request(addr, "POST", "/campaigns/quotes", Some(&body));
    assert_eq!(status, 400);
    assert!(text(&reply, "message").contains("exactly one of"));

    // Not an array → 400; over the item cap → 400.
    let (status, _) = request(addr, "POST", "/campaigns/quotes", Some("{\"quotes\":7}"));
    assert_eq!(status, 400);
    let oversized = format!(
        "{{\"quotes\":[{}]}}",
        vec![format!("{{\"id\":{deadline_id},\"remaining\":1,\"interval\":0}}"); 1025].join(",")
    );
    let (status, reply) = request(addr, "POST", "/campaigns/quotes", Some(&oversized));
    assert_eq!(status, 400);
    assert!(text(&reply, "message").contains("max 1024"));

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn bulk_observations_batch_telemetry_reports() {
    let (addr, deadline_id, budget_id, handle, join) = serve_two_kinds();

    let body = format!(
        "{{\"observations\":[\
         {{\"id\":{deadline_id},\"interval\":0,\"completions\":2}},\
         {{\"id\":{budget_id},\"completions\":1,\"spent_cents\":6}},\
         {{\"id\":424242,\"interval\":0,\"completions\":1}}\
         ]}}"
    );
    let (status, reply) = request(addr, "POST", "/campaigns/observations", Some(&body));
    assert_eq!(status, 200, "bulk observe failed: {reply:?}");
    assert_eq!(num(&reply, "count"), 3.0);
    let items = results(&reply);
    assert_eq!(text(&items[0], "status"), "live");
    assert_eq!(num(&items[0], "remaining"), 18.0);
    assert_eq!(text(&items[1], "status"), "live");
    assert_eq!(num(&items[1], "remaining"), 9.0);
    assert_eq!(text(&items[2], "error"), "unknown_campaign");

    // Structural failure names its item (bad mixed kind on item 0).
    let body = format!("{{\"observations\":[{{\"id\":{deadline_id},\"completions\":1}}]}}");
    let (status, reply) = request(addr, "POST", "/campaigns/observations", Some(&body));
    assert_eq!(status, 400);
    assert!(
        text(&reply, "message").contains("item 0"),
        "400 does not name the item: {reply:?}"
    );

    // The single-campaign endpoint still agrees with the bulk plane.
    let (status, single) = request(
        addr,
        "POST",
        &format!("/campaigns/{deadline_id}/observations"),
        Some("{\"interval\":1,\"completions\":3}"),
    );
    assert_eq!(status, 200);
    assert_eq!(num(&single, "remaining"), 15.0);

    handle.shutdown();
    join.join().expect("server thread");
}
