//! The acceptance-bar integration test: drive the full campaign
//! lifecycle over a real TCP socket — create → solve → price → observe
//! drift → recalibrated price changes generation → snapshot save/load →
//! price survives restart — using only std + the vendored shims.

use ft_core::adaptive::AdaptiveOptions;
use ft_core::registry::CampaignRegistry;
use ft_core::{DeadlineProblem, KernelConfig, PenaltyModel};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use ft_server::Server;
use serde::{map_get, Serialize, Value};
use std::net::SocketAddr;
use std::sync::Arc;

/// One request over a fresh connection, JSON-decoded.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, body) = ft_server::client::request(addr, method, path, body).expect("request");
    let value = serde_json::from_str::<Value>(&body).expect("JSON body");
    (status, value)
}

fn num(value: &Value, key: &str) -> f64 {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_num()
        .unwrap_or_else(|| panic!("{key} not a number in {value:?}"))
}

fn text<'v>(value: &'v Value, key: &str) -> &'v str {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_str()
        .unwrap_or_else(|| panic!("{key} not a string in {value:?}"))
}

fn problem() -> DeadlineProblem {
    DeadlineProblem::from_market(
        20,
        4.0,
        12,
        &ConstantRate::new(150.0),
        PriceGrid::new(0, 20),
        &LogitAcceptance::new(4.0, 0.0, 30.0),
        PenaltyModel::Linear { per_task: 500.0 },
    )
}

fn registry() -> Arc<CampaignRegistry> {
    // Aggressive recalibration so drift shows up within a short test.
    Arc::new(CampaignRegistry::with_config(
        KernelConfig::default(),
        AdaptiveOptions {
            resolve_every: 3,
            ..AdaptiveOptions::default()
        },
    ))
}

#[test]
fn full_lifecycle_over_a_real_socket() {
    let registry_a = registry();
    let (handle, join) =
        Server::spawn("127.0.0.1:0", Arc::clone(&registry_a)).expect("bind server");
    let addr = handle.addr();

    // Liveness first: uptime, build version and an empty fleet.
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(text(&body, "status"), "ok");
    assert_eq!(text(&body, "version"), env!("CARGO_PKG_VERSION"));
    assert!(num(&body, "uptime_seconds") >= 0.0);
    assert_eq!(num(&body, "campaigns_total"), 0.0);
    assert_eq!(num(&body, "campaigns_serving"), 0.0);
    let by_status = map_get(body.as_map().unwrap(), "campaigns")
        .expect("campaigns map")
        .as_map()
        .expect("status counts object");
    for status_name in [
        "draft",
        "solving",
        "live",
        "recalibrating",
        "exhausted",
        "evicted",
    ] {
        assert_eq!(
            map_get(by_status, status_name).unwrap(),
            &Value::Num(0.0),
            "fresh server has no {status_name} campaigns"
        );
    }

    // Create: POST the spec (problem JSON straight from the serde
    // encoding of DeadlineProblem).
    let problem_json = serde_json::to_string(&problem().to_value()).expect("problem json");
    let spec = format!("{{\"kind\":\"deadline\",\"problem\":{problem_json},\"eps\":1e-9}}");
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
    assert_eq!(status, 201, "create failed: {body:?}");
    assert_eq!(text(&body, "status"), "draft");
    let id = num(&body, "id") as u64;

    // Status shows the draft; price is a structured 409 before solving.
    let (status, body) = request(addr, "GET", &format!("/campaigns/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(text(&body, "status"), "draft");
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=20&interval=0"),
        None,
    );
    assert_eq!(status, 409);
    assert_eq!(text(&body, "error"), "not_servable");

    // Solve → live at generation 1.
    let (status, body) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    assert_eq!(status, 200, "solve failed: {body:?}");
    assert_eq!(text(&body, "status"), "live");
    assert_eq!(num(&body, "generation"), 1.0);
    // Double-solve is a conflict.
    let (status, _) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    assert_eq!(status, 409);

    // Price from generation 1.
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=20&interval=0"),
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(num(&body, "generation"), 1.0);
    let initial_price = num(&body, "price");
    assert!(initial_price >= 0.0);

    // Observe heavy drift (almost no completions vs the trained model)
    // until a recalibration bumps the generation.
    let mut generation = 1.0;
    let mut correction = 1.0;
    for interval in 0..6 {
        let obs = format!("{{\"interval\":{interval},\"completions\":1}}");
        let (status, body) = request(
            addr,
            "POST",
            &format!("/campaigns/{id}/observations"),
            Some(&obs),
        );
        assert_eq!(status, 200, "observe failed: {body:?}");
        generation = num(&body, "generation");
        correction = num(&body, "correction");
    }
    assert!(generation >= 2.0, "no recalibration after 6 intervals");
    assert!(correction < 1.0, "drift did not lower ρ̂: {correction}");

    // The recalibrated price is served under the new generation.
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=14&interval=6"),
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(num(&body, "generation"), generation);
    let recalibrated_price = num(&body, "price");

    // Diagnostics reflect the recalibration.
    let (status, body) = request(addr, "GET", &format!("/campaigns/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(text(&body, "status"), "live");
    assert_eq!(num(&body, "generation"), generation);
    assert_eq!(num(&body, "observations"), 6.0);
    assert!(num(&body, "policy_start") > 0.0);

    // Error surface: unknown campaign → 404, kind mismatch → 400.
    let (status, body) = request(
        addr,
        "GET",
        "/campaigns/999999/price?remaining=1&interval=0",
        None,
    );
    assert_eq!(status, 404);
    assert_eq!(text(&body, "error"), "unknown_campaign");
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=1&budget_cents=50"),
        None,
    );
    assert_eq!(status, 400);
    assert_eq!(text(&body, "error"), "state_kind_mismatch");

    // Snapshot, shut the server down, restore into a fresh registry and
    // serve again: the recalibrated price and generation must survive.
    let snapshot_path = std::env::temp_dir().join(format!("ft-server-lifecycle-{id}.json"));
    registry_a.save(&snapshot_path).expect("snapshot save");
    handle.shutdown();
    join.join().expect("server thread");

    let restored = Arc::new(
        CampaignRegistry::load(
            &snapshot_path,
            KernelConfig::default(),
            AdaptiveOptions::default(),
        )
        .expect("snapshot load"),
    );
    std::fs::remove_file(&snapshot_path).ok();
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&restored)).expect("rebind");
    let addr = handle.addr();

    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=14&interval=6"),
        None,
    );
    assert_eq!(status, 200, "price after restart failed: {body:?}");
    assert_eq!(
        num(&body, "generation"),
        generation,
        "generation lost in restart"
    );
    assert_eq!(
        num(&body, "price"),
        recalibrated_price,
        "price lost in restart"
    );
    // Observations keep flowing after the restart.
    let (status, body) = request(
        addr,
        "POST",
        &format!("/campaigns/{id}/observations"),
        Some("{\"interval\":6,\"completions\":1}"),
    );
    assert_eq!(status, 200, "observe after restart failed: {body:?}");

    // Delete: tombstone + structured 409 afterwards, healthz still fine.
    let (status, body) = request(addr, "DELETE", &format!("/campaigns/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(text(&body, "status"), "evicted");
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=14&interval=6"),
        None,
    );
    assert_eq!(status, 409);
    assert_eq!(text(&body, "error"), "not_servable");
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    // The tombstone still counts as a record; nothing is serving.
    assert_eq!(num(&body, "campaigns_total"), 1.0);
    assert_eq!(num(&body, "campaigns_serving"), 0.0);
    let by_status = map_get(body.as_map().unwrap(), "campaigns")
        .expect("campaigns map")
        .as_map()
        .expect("status counts object");
    assert_eq!(map_get(by_status, "evicted").unwrap(), &Value::Num(1.0));
    assert_eq!(map_get(by_status, "live").unwrap(), &Value::Num(0.0));

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn budget_campaign_over_the_wire() {
    let registry = registry();
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    let acc = LogitAcceptance::new(4.0, 0.0, 20.0);
    let problem = ft_core::BudgetProblem::new(
        10,
        60.0,
        ft_core::ActionSet::from_grid(PriceGrid::new(1, 12), &acc),
        100.0,
    );
    let problem_json = serde_json::to_string(&problem.to_value()).expect("problem json");
    let spec = format!("{{\"kind\":\"budget\",\"problem\":{problem_json}}}");
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
    assert_eq!(status, 201, "create failed: {body:?}");
    let id = num(&body, "id") as u64;
    let (status, _) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    assert_eq!(status, 200);

    // Quote on and off plan.
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=10&budget_cents=60"),
        None,
    );
    assert_eq!(status, 200);
    assert!(num(&body, "price") >= 1.0);
    // Infeasible state → 422.
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=10&budget_cents=5"),
        None,
    );
    assert_eq!(status, 422);
    assert_eq!(text(&body, "error"), "infeasible");

    // Progress reports run the campaign down to exhaustion.
    let (status, body) = request(
        addr,
        "POST",
        &format!("/campaigns/{id}/observations"),
        Some("{\"completions\":10,\"spent_cents\":55}"),
    );
    assert_eq!(status, 200);
    assert_eq!(text(&body, "status"), "exhausted");
    let (status, body) = request(addr, "GET", &format!("/campaigns/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(num(&body, "spent_cents"), 55.0);
    assert_eq!(num(&body, "remaining"), 0.0);

    handle.shutdown();
    join.join().expect("server thread");
}

/// Satellite: real pagination on the fleet index, asserted against the
/// sharded store (ids must come back ascending and complete across
/// pages regardless of which shard holds them).
#[test]
fn campaigns_index_paginates_across_shards() {
    let registry = registry();
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    let problem_json = serde_json::to_string(&problem().to_value()).expect("problem json");
    let spec = format!("{{\"kind\":\"deadline\",\"problem\":{problem_json}}}");
    let mut created = Vec::new();
    for _ in 0..5 {
        let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
        assert_eq!(status, 201);
        created.push(num(&body, "id") as u64);
    }

    let page = |query: &str| -> (u16, Value) { request(addr, "GET", query, None) };
    let ids_of = |body: &Value| -> Vec<u64> {
        map_get(body.as_map().unwrap(), "campaigns")
            .unwrap()
            .as_seq()
            .unwrap()
            .iter()
            .map(|c| num(c, "id") as u64)
            .collect()
    };

    // Two pages of two plus a final page of one cover the fleet in
    // ascending id order with no duplicates or gaps.
    let mut paged = Vec::new();
    for offset in [0usize, 2, 4] {
        let (status, body) = page(&format!("/campaigns?limit=2&offset={offset}"));
        assert_eq!(status, 200);
        assert_eq!(num(&body, "total"), 5.0);
        assert_eq!(num(&body, "offset"), offset as f64);
        let ids = ids_of(&body);
        assert_eq!(num(&body, "returned"), ids.len() as f64);
        paged.extend(ids);
    }
    assert_eq!(paged, created, "pages must tile the fleet in id order");

    // Offset past the end: empty page, still self-describing.
    let (status, body) = page("/campaigns?offset=99");
    assert_eq!(status, 200);
    assert_eq!(num(&body, "returned"), 0.0);
    assert_eq!(num(&body, "total"), 5.0);

    // Bad values are 400s, not panics or silent defaults.
    for bad in [
        "/campaigns?offset=-1",
        "/campaigns?offset=abc",
        "/campaigns?limit=-3",
        "/campaigns?limit=x&offset=1",
    ] {
        let (status, body) = page(bad);
        assert_eq!(status, 400, "{bad} answered {body:?}");
        assert_eq!(text(&body, "error"), "bad_request");
    }

    // `campaigns_total` in /healthz agrees with the index's `total`
    // (both derive from the sharded store).
    let (_, health) = request(addr, "GET", "/healthz", None);
    assert_eq!(num(&health, "campaigns_total"), 5.0);

    handle.shutdown();
    join.join().expect("server thread");
}

/// Tentpole acceptance: budget campaigns recalibrate under acceptance
/// drift over the wire, and the kind-split recalibration counter shows
/// up in `GET /metrics`.
#[test]
fn budget_acceptance_drift_recalibrates_over_the_wire() {
    let registry = registry();
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    let acc = LogitAcceptance::new(4.0, 0.0, 20.0);
    let problem = ft_core::BudgetProblem::new(
        40,
        600.0,
        ft_core::ActionSet::from_grid(PriceGrid::new(1, 20), &acc),
        100.0,
    );
    let problem_json = serde_json::to_string(&problem.to_value()).expect("problem json");
    let spec = format!("{{\"kind\":\"budget\",\"problem\":{problem_json}}}");
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
    assert_eq!(status, 201, "create failed: {body:?}");
    let id = num(&body, "id") as u64;
    let (status, _) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    assert_eq!(status, 200);

    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=40&budget_cents=600"),
        None,
    );
    assert_eq!(status, 200);
    let posted = num(&body, "price");
    assert_eq!(num(&body, "generation"), 1.0);

    // Exposure-carrying reports with collapsed acceptance: 60 workers
    // saw the price each round, almost nobody took it. The default
    // cadence re-solves on the second drifted report.
    let mut recalibrated = false;
    let mut generation = 1.0;
    for _ in 0..3 {
        let obs = format!(
            "{{\"completions\":2,\"spent_cents\":{},\"posted_cents\":{posted},\"offers\":60}}",
            2 * posted as u64
        );
        let (status, body) = request(
            addr,
            "POST",
            &format!("/campaigns/{id}/observations"),
            Some(&obs),
        );
        assert_eq!(status, 200, "observe failed: {body:?}");
        assert!(num(&body, "correction") < 1.0);
        recalibrated |= matches!(
            map_get(body.as_map().unwrap(), "recalibrated"),
            Ok(Value::Bool(true))
        );
        generation = num(&body, "generation");
    }
    assert!(recalibrated, "no budget recalibration over the wire");
    assert!(generation >= 2.0);

    // The recalibrated generation serves quotes…
    let (status, body) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=34&budget_cents=400"),
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(num(&body, "generation"), generation);

    // …the diagnostics expose the drift state…
    let (status, body) = request(addr, "GET", &format!("/campaigns/{id}"), None);
    assert_eq!(status, 200);
    assert!(num(&body, "acceptance_shift") < 0.0);

    // …and the kind-split counter is visible in both metric formats.
    let (status, body) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let budget_recals = num(
        &body,
        "ft_core_recalibrations_by_kind_total{kind=\"budget\"}",
    );
    assert!(budget_recals >= 1.0, "budget recalibration not in /metrics");
    let (status, text_body) =
        ft_server::client::request(addr, "GET", "/metrics?format=prometheus", None)
            .expect("prometheus export");
    assert_eq!(status, 200);
    assert!(text_body.contains("ft_core_recalibrations_by_kind_total{kind=\"budget\"}"));
    // The server registers the executor's counters at startup, so the
    // pool's steal/overflow instruments ride the same export plane even
    // while still at zero.
    assert!(
        text_body.contains("ft_exec_steals_total"),
        "executor steal counter not on the export plane"
    );
    assert!(text_body.contains("ft_exec_deque_overflow_total"));

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn malformed_requests_are_structured_400s() {
    let registry = registry();
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    // Bad JSON body.
    let (status, body) = request(addr, "POST", "/campaigns", Some("{not json"));
    assert_eq!(status, 400);
    assert_eq!(text(&body, "error"), "bad_request");
    // Missing kind.
    let (status, _) = request(addr, "POST", "/campaigns", Some("{\"problem\":{}}"));
    assert_eq!(status, 400);
    // Unknown route / bad id.
    let (status, _) = request(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/campaigns/abc", None);
    assert_eq!(status, 400);
    // Price without discriminating params.
    let problem_json = serde_json::to_string(&problem().to_value()).unwrap();
    let spec = format!("{{\"kind\":\"deadline\",\"problem\":{problem_json}}}");
    let (_, body) = request(addr, "POST", "/campaigns", Some(&spec));
    let id = num(&body, "id") as u64;
    let (status, _) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    assert_eq!(status, 200);
    let (status, _) = request(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=5"),
        None,
    );
    assert_eq!(status, 400);

    handle.shutdown();
    join.join().expect("server thread");
}
