//! Serving-tier behaviour over real sockets: a request flood against a
//! saturated worker pool is survived with a **bounded thread count**
//! (excess requests get a clean `503 server_busy`, and the tier
//! recovers once the slow work drains), shutdown is prompt, the fleet
//! index pages, and `/metrics` reflects what the server actually did,
//! in both formats.

use ft_core::registry::CampaignRegistry;
use ft_core::{DeadlineProblem, PenaltyModel};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use ft_server::{Server, ServerConfig};
use serde::{map_get, Serialize, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, body) = ft_server::client::request(addr, method, path, body).expect("request");
    (status, serde_json::from_str::<Value>(&body).expect("json"))
}

fn num(value: &Value, key: &str) -> f64 {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_num()
        .unwrap_or_else(|| panic!("{key} not a number in {value:?}"))
}

fn problem_json() -> String {
    let problem = DeadlineProblem::from_market(
        10,
        2.0,
        6,
        &ConstantRate::new(80.0),
        PriceGrid::new(0, 12),
        &LogitAcceptance::new(4.0, 0.0, 30.0),
        PenaltyModel::Linear { per_task: 300.0 },
    );
    serde_json::to_string(&problem.to_value()).expect("problem json")
}

/// Current thread count of this process (Linux; the CI and dev
/// containers are Linux — elsewhere the bound check is skipped).
use ft_exec::process_threads as thread_count;

/// Send one keep-alive request and read the response, returning the
/// still-open stream (its handler thread stays parked in `read`).
fn hold_keep_alive(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
    )
    .expect("write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.contains("200"), "keep-alive probe failed: {line}");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        if header.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    stream
}

/// A deadline problem big enough that its solve occupies a worker for
/// a while (hundreds of ms in debug builds) — the reactor multiplexes
/// idle sockets off the workers, so only genuinely slow *requests* can
/// saturate the pool.
fn slow_problem_json() -> String {
    let problem = DeadlineProblem::from_market(
        20_000,
        2.0,
        120,
        &ConstantRate::new(80.0),
        PriceGrid::new(0, 150),
        &LogitAcceptance::new(4.0, 0.0, 30.0),
        PenaltyModel::Linear { per_task: 300.0 },
    );
    serde_json::to_string(&problem.to_value()).expect("problem json")
}

/// Fire a request without reading the response: the connection stays
/// open with the request in flight, occupying a worker (or a ready-
/// queue slot) until the handler finishes — no client thread needed.
fn send_unread(addr: SocketAddr, method: &str, path: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
    )
    .expect("write");
    stream
}

#[test]
fn request_flood_is_survived_with_bounded_threads() {
    let registry = Arc::new(CampaignRegistry::new());
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    // The shared ft-exec pool spawns lazily on the first parallel
    // dispatch anywhere in the process (e.g. a solve in a concurrently
    // running test); force it up *before* the baseline so the delta
    // below measures only connection handling.
    let _ = ft_exec::Pool::global();
    let baseline = thread_count();
    let (handle, join) =
        Server::spawn_with("127.0.0.1:0", Arc::clone(&registry), config).expect("bind");
    let addr = handle.addr();

    // Two slow solves: the first occupies the only worker, the second
    // fills the one-slot ready-queue.
    let spec = format!(
        "{{\"kind\":\"deadline\",\"problem\":{}}}",
        slow_problem_json()
    );
    let mut ids = Vec::new();
    for _ in 0..2 {
        let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
        assert_eq!(status, 201);
        ids.push(num(&body, "id") as u64);
    }
    let slow_a = send_unread(addr, "POST", &format!("/campaigns/{}/solve", ids[0]));
    // Let the worker pop the first solve before sending the second, so
    // the second deterministically fills the one-slot ready-queue
    // instead of racing the pop.
    std::thread::sleep(Duration::from_millis(100));
    let slow_b = send_unread(addr, "POST", &format!("/campaigns/{}/solve", ids[1]));
    std::thread::sleep(Duration::from_millis(100)); // let the reactor parse + enqueue it

    // Flood. Every further request must be answered with a clean 503,
    // not a new thread — and *in order* on its own connection.
    let mut rejected = 0;
    for _ in 0..8 {
        let (status, body) = request(addr, "GET", "/healthz", None);
        assert_eq!(status, 503, "expected server_busy, got {status}: {body:?}");
        rejected += 1;
    }
    assert_eq!(rejected, 8);

    // Thread bound: reactor + workers, never a thread per connection.
    // (10 connections are open or rejected at this point; the old
    // thread-per-connection design would sit at baseline + 10.)
    if let (Some(before), Some(during)) = (baseline, thread_count()) {
        assert!(
            during <= before + 1 + config.workers,
            "thread count grew past the pool bound: {before} -> {during}"
        );
    }

    // Once the slow solves drain, the tier must answer normally again.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _) = request(addr, "GET", "/healthz", None);
        if status == 200 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server did not recover from the flood"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(slow_a);
    drop(slow_b);

    // The accounting made it into the metrics plane.
    let (status, metrics) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        num(&metrics, "ft_server_connections_rejected_total") >= 8.0,
        "rejections not counted: {metrics:?}"
    );
    assert!(num(&metrics, "ft_server_connections_accepted_total") >= 12.0);
    // The ready-queue wait histogram saw the hand-offs.
    let queue_wait = map_get(metrics.as_map().unwrap(), "ft_server_queue_wait_ns")
        .expect("queue wait histogram")
        .as_map()
        .expect("histogram object");
    assert!(num(&Value::Map(queue_wait.to_vec()), "count") >= 2.0);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn shutdown_does_not_wait_for_idle_keepalive_connections() {
    // A parked keep-alive reader must be unparked on shutdown (its
    // read half is shut down), not waited out for the 30 s idle
    // timeout.
    let registry = Arc::new(CampaignRegistry::new());
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let held = hold_keep_alive(handle.addr());
    let started = std::time::Instant::now();
    handle.shutdown();
    join.join().expect("server thread");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown blocked on an idle keep-alive connection for {:?}",
        started.elapsed()
    );
    drop(held);
}

#[test]
fn fleet_index_pages_and_validates() {
    let registry = Arc::new(CampaignRegistry::new());
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    let spec = format!("{{\"kind\":\"deadline\",\"problem\":{}}}", problem_json());
    let mut ids = Vec::new();
    for _ in 0..3 {
        let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
        assert_eq!(status, 201);
        ids.push(num(&body, "id") as u64);
    }
    let (status, _) = request(addr, "POST", &format!("/campaigns/{}/solve", ids[0]), None);
    assert_eq!(status, 200);

    let (status, body) = request(addr, "GET", "/campaigns", None);
    assert_eq!(status, 200);
    assert_eq!(num(&body, "total"), 3.0);
    assert_eq!(num(&body, "returned"), 3.0);
    let campaigns = map_get(body.as_map().unwrap(), "campaigns")
        .unwrap()
        .as_seq()
        .expect("campaigns array");
    assert_eq!(num(&campaigns[0], "id"), ids[0] as f64);
    assert_eq!(num(&campaigns[0], "generation"), 1.0);
    let status_str = map_get(campaigns[0].as_map().unwrap(), "status")
        .unwrap()
        .as_str()
        .unwrap();
    assert_eq!(status_str, "live");
    let kind = map_get(campaigns[1].as_map().unwrap(), "kind")
        .unwrap()
        .as_str()
        .unwrap();
    assert_eq!(kind, "deadline");

    // Paging.
    let (status, body) = request(addr, "GET", "/campaigns?limit=2", None);
    assert_eq!(status, 200);
    assert_eq!(num(&body, "total"), 3.0);
    assert_eq!(num(&body, "returned"), 2.0);
    // Validation.
    let (status, _) = request(addr, "GET", "/campaigns?limit=nope", None);
    assert_eq!(status, 400);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn metrics_reflect_requests_in_both_formats() {
    let registry = Arc::new(CampaignRegistry::new());
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    let spec = format!("{{\"kind\":\"deadline\",\"problem\":{}}}", problem_json());
    let (_, body) = request(addr, "POST", "/campaigns", Some(&spec));
    let id = num(&body, "id") as u64;
    let (status, _) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    assert_eq!(status, 200);
    for _ in 0..5 {
        let (status, _) = request(
            addr,
            "GET",
            &format!("/campaigns/{id}/price?remaining=10&interval=0"),
            None,
        );
        assert_eq!(status, 200);
    }
    // One structured error: unknown campaign.
    let (status, _) = request(
        addr,
        "GET",
        "/campaigns/999/price?remaining=1&interval=0",
        None,
    );
    assert_eq!(status, 404);

    let (status, metrics) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert_eq!(
        num(
            &metrics,
            "ft_server_requests_total{endpoint=\"campaign_price\"}"
        ),
        6.0
    );
    assert_eq!(
        num(
            &metrics,
            "ft_server_requests_total{endpoint=\"campaign_solve\"}"
        ),
        1.0
    );
    // The registry's own counters ride in the same plane.
    assert_eq!(num(&metrics, "ft_core_quotes_total"), 6.0);
    assert_eq!(num(&metrics, "ft_core_quote_errors_total"), 1.0);
    assert_eq!(num(&metrics, "ft_core_solves_total"), 1.0);
    // Latency histograms carry samples and quantiles.
    let price_hist = map_get(
        metrics.as_map().unwrap(),
        "ft_server_request_ns{endpoint=\"campaign_price\"}",
    )
    .expect("price latency histogram")
    .as_map()
    .expect("histogram object");
    assert_eq!(map_get(price_hist, "count").unwrap(), &Value::Num(6.0));
    assert!(num(&Value::Map(price_hist.to_vec()), "p99") > 0.0);

    // Prometheus text exposition.
    let (status, text) =
        ft_server::client::request(addr, "GET", "/metrics?format=prometheus", None).expect("req");
    assert_eq!(status, 200);
    assert!(text.contains("# TYPE ft_server_requests_total counter"));
    assert!(text.contains("ft_server_requests_total{endpoint=\"campaign_price\"} 6"));
    assert!(text.contains("ft_core_quotes_total 6"));
    assert!(text.contains("ft_server_request_ns{endpoint=\"campaign_price\",quantile=\"0.99\"}"));
    // Unknown format is a structured 400.
    let (status, _) = request(addr, "GET", "/metrics?format=xml", None);
    assert_eq!(status, 400);

    handle.shutdown();
    join.join().expect("server thread");
}
