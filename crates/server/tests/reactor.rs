//! Event-loop edge cases over real sockets: slow-header connections
//! (slowloris) are reaped by the idle deadline without a response,
//! pipelined requests on one connection are answered strictly in
//! order, and the keep-alive [`ft_server::Client`] really does reuse
//! one TCP connection (and transparently reconnects after the server
//! reaps it).

use ft_core::registry::CampaignRegistry;
use ft_server::{Client, Server, ServerConfig};
use serde::{map_get, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn metric(addr: std::net::SocketAddr, key: &str) -> f64 {
    let (status, body) =
        ft_server::client::request(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&body).expect("json");
    map_get(metrics.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key}"))
        .as_num()
        .unwrap_or_else(|| panic!("{key} not a number"))
}

#[test]
fn slowloris_partial_headers_hit_the_idle_deadline() {
    // A connection that dribbles half a request line and then stalls
    // must be dropped by the first-request deadline — without a
    // response, without occupying a worker, and without wedging the
    // reactor for well-behaved peers.
    let registry = Arc::new(CampaignRegistry::new());
    let config = ServerConfig {
        first_request_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (handle, join) =
        Server::spawn_with("127.0.0.1:0", Arc::clone(&registry), config).expect("bind");
    let addr = handle.addr();

    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.write_all(b"GET /healthz HT").expect("partial write");

    // A well-behaved request on another connection is served while the
    // slow one idles.
    let (status, _) = ft_server::client::request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);

    // The slow connection is closed without any response bytes.
    slow.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let started = Instant::now();
    let mut buf = [0u8; 64];
    let n = slow.read(&mut buf).expect("read after deadline");
    assert_eq!(
        n,
        0,
        "expected a silent close, got response bytes: {:?}",
        String::from_utf8_lossy(&buf[..n])
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "slowloris connection survived past the deadline"
    );
    // Never handed to a worker: accepted but zero requests routed on it
    // beyond the healthz probe above.
    assert!(metric(addr, "ft_server_connections_accepted_total") >= 2.0);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    // HTTP/1.1 pipelining: a burst of requests written back-to-back on
    // one connection comes back as one ordered stream of responses.
    // Alternating known/unknown routes makes reordering observable as
    // a status-sequence mismatch.
    let registry = Arc::new(CampaignRegistry::new());
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut burst = String::new();
    let paths = [
        "/healthz",
        "/no/such/route",
        "/healthz",
        "/nope",
        "/healthz",
    ];
    for path in paths {
        burst.push_str(&format!(
            "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        ));
    }
    stream.write_all(burst.as_bytes()).expect("write burst");
    // Half-close the write side: the server must still answer all five
    // parsed requests before closing.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write");

    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read responses");
    let text = String::from_utf8_lossy(&raw);
    // Status lines are NOT newline-separated from the previous body
    // (responses are written back-to-back), so scan by marker instead
    // of by line.
    let statuses: Vec<&str> = text
        .match_indices("HTTP/1.1 ")
        .map(|(i, _)| &text[i + 9..i + 12])
        .collect();
    assert_eq!(
        statuses,
        ["200", "404", "200", "404", "200"],
        "pipelined responses out of order or missing:\n{text}"
    );

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn keep_alive_client_reuses_one_connection_and_reconnects() {
    let registry = Arc::new(CampaignRegistry::new());
    let config = ServerConfig {
        keep_alive_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (handle, join) =
        Server::spawn_with("127.0.0.1:0", Arc::clone(&registry), config).expect("bind");
    let addr = handle.addr();

    let mut client = Client::new(addr);
    for _ in 0..5 {
        let (status, _) = client.request("GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
    }
    // Five requests, one TCP connection. The metrics probe opens its
    // own one-shot connection (and its accept is counted before the
    // response is rendered), so the fleet total is client + probe = 2.
    assert_eq!(metric(addr, "ft_server_connections_accepted_total"), 2.0);

    // Let the server reap the idle connection, then request again: the
    // client must reconnect transparently and succeed.
    std::thread::sleep(Duration::from_millis(600));
    let (status, _) = client.request("GET", "/healthz", None).expect("reconnect");
    assert_eq!(status, 200);
    // One fresh accept for the reconnect (+1 for the probe below).
    assert_eq!(metric(addr, "ft_server_connections_accepted_total"), 4.0);

    handle.shutdown();
    join.join().expect("server thread");
}
