//! Request-scoped tracing over a real socket: `x-ft-trace` ids are
//! echoed on unit and bulk endpoints, `GET /trace/{id}` returns the
//! span tree for a tagged request, children nest strictly inside
//! their parents, and a recalibrating observation's trace covers the
//! whole stack — server → registry → engine → kernel → exec — with
//! the reactor hand-off attributed as a `queue_wait` span.

use ft_core::adaptive::AdaptiveOptions;
use ft_core::registry::CampaignRegistry;
use ft_core::{DeadlineProblem, KernelConfig, PenaltyModel};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use ft_server::client::Client;
use ft_server::Server;
use serde::{map_get, Serialize, Value};
use std::net::SocketAddr;
use std::sync::Arc;

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, body) = ft_server::client::request(addr, method, path, body).expect("request");
    (status, serde_json::from_str::<Value>(&body).expect("json"))
}

fn num(value: &Value, key: &str) -> f64 {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_num()
        .unwrap_or_else(|| panic!("{key} not a number in {value:?}"))
}

fn text<'v>(value: &'v Value, key: &str) -> &'v str {
    map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|_| panic!("missing {key} in {value:?}"))
        .as_str()
        .unwrap_or_else(|| panic!("{key} not a string in {value:?}"))
}

fn problem() -> DeadlineProblem {
    DeadlineProblem::from_market(
        20,
        4.0,
        12,
        &ConstantRate::new(150.0),
        PriceGrid::new(0, 20),
        &LogitAcceptance::new(4.0, 0.0, 30.0),
        PenaltyModel::Linear { per_task: 500.0 },
    )
}

/// Spawn a server with one solved deadline campaign on an aggressive
/// recalibration cadence; returns `(addr, campaign_id, ...)`.
fn serve_one() -> (
    SocketAddr,
    u64,
    ft_server::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let registry = Arc::new(CampaignRegistry::with_config(
        KernelConfig::default(),
        AdaptiveOptions {
            resolve_every: 3,
            ..AdaptiveOptions::default()
        },
    ));
    let (handle, join) = Server::spawn("127.0.0.1:0", registry).expect("bind");
    let addr = handle.addr();
    let problem_json = serde_json::to_string(&problem().to_value()).expect("problem json");
    let spec = format!("{{\"kind\":\"deadline\",\"problem\":{problem_json},\"eps\":1e-9}}");
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec));
    assert_eq!(status, 201, "create failed: {body:?}");
    let id = num(&body, "id") as u64;
    let (status, _) = request(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    assert_eq!(status, 200);
    (addr, id, handle, join)
}

/// The `trace-off` twin compiles recording out; these tests assert
/// recorded span trees, so they no-op there. (Echoing `x-ft-trace` is
/// a wire contract and survives `trace-off`, but without stored spans
/// there is nothing to fetch.)
fn tracing_compiled_in() -> bool {
    let id = ft_trace::next_trace_id();
    drop(ft_trace::begin_at(
        id,
        "server.request.serve",
        ft_trace::now_ns(),
    ));
    ft_trace::find_json(id).is_some()
}

/// One parsed span from a `GET /trace/{id}` body.
#[derive(Debug)]
struct Span {
    span_id: u64,
    parent_id: u64,
    name: String,
    start_ns: u64,
    end_ns: u64,
}

fn spans_of(trace: &Value) -> Vec<Span> {
    map_get(trace.as_map().expect("trace object"), "spans")
        .expect("spans")
        .as_seq()
        .expect("spans array")
        .iter()
        .map(|span| Span {
            span_id: num(span, "span_id") as u64,
            parent_id: num(span, "parent_id") as u64,
            name: text(span, "name").to_string(),
            start_ns: num(span, "start_ns") as u64,
            end_ns: num(span, "end_ns") as u64,
        })
        .collect()
}

/// Well-formedness shared by every trace: exactly one root named
/// `server.request.serve`, every parent link resolves, and each
/// child's `[start, end]` window nests strictly inside its parent's.
fn assert_well_formed(spans: &[Span]) {
    assert!(!spans.is_empty(), "trace has no spans");
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "expected one root span: {roots:?}");
    assert_eq!(roots[0].name, "server.request.serve");
    for span in spans {
        assert!(
            span.end_ns >= span.start_ns,
            "span ends before start: {span:?}"
        );
        if span.parent_id == 0 {
            continue;
        }
        let parent = spans
            .iter()
            .find(|p| p.span_id == span.parent_id)
            .unwrap_or_else(|| panic!("dangling parent link: {span:?}"));
        assert!(
            span.start_ns >= parent.start_ns && span.end_ns <= parent.end_ns,
            "child not nested in parent:\n  child  {span:?}\n  parent {parent:?}"
        );
    }
}

#[test]
fn x_ft_trace_echoed_on_unit_and_bulk_endpoints() {
    if !tracing_compiled_in() {
        eprintln!("skipping: ft-trace is compiled out (trace-off)");
        return;
    }
    let (addr, id, handle, join) = serve_one();
    let mut client = Client::new(addr);

    // Unit endpoint: the id we tag the price lookup with comes back
    // on the response, and GET /trace/{id} resolves it afterwards.
    let unit_id = ft_trace::next_trace_id();
    let (status, _, echoed) = client
        .request_traced(
            "GET",
            &format!("/campaigns/{id}/price?remaining=20&interval=0"),
            None,
            Some(unit_id),
        )
        .expect("traced price");
    assert_eq!(status, 200);
    assert_eq!(echoed, Some(unit_id), "unit endpoint must echo x-ft-trace");

    // Bulk endpoint: same contract on the batched quote plane.
    let bulk_id = ft_trace::next_trace_id();
    let body = format!(
        "{{\"quotes\":[\
         {{\"id\":{id},\"remaining\":20,\"interval\":0}},\
         {{\"id\":{id},\"remaining\":10,\"interval\":3}}\
         ]}}"
    );
    let (status, _, echoed) = client
        .request_traced("POST", "/campaigns/quotes", Some(&body), Some(bulk_id))
        .expect("traced bulk quote");
    assert_eq!(status, 200);
    assert_eq!(echoed, Some(bulk_id), "bulk endpoint must echo x-ft-trace");

    // Both tagged requests are retrievable as well-formed span trees.
    for trace_id in [unit_id, bulk_id] {
        let (status, trace) = request(addr, "GET", &format!("/trace/{trace_id:016x}"), None);
        assert_eq!(status, 200, "trace not stored: {trace:?}");
        assert_eq!(text(&trace, "trace_id"), format!("{trace_id:016x}"));
        assert_well_formed(&spans_of(&trace));
    }

    // Untagged ids are a 404, not a 500; garbage is a 400.
    let (status, _) = request(addr, "GET", "/trace/ffffffffffffffff", None);
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/trace/not-hex", None);
    assert_eq!(status, 400);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn recalibrating_trace_spans_server_registry_engine_kernel_exec() {
    if !tracing_compiled_in() {
        eprintln!("skipping: ft-trace is compiled out (trace-off)");
        return;
    }
    let (addr, id, handle, join) = serve_one();
    let mut client = Client::new(addr);

    // Observe heavy drift with a tagged id on every report; remember
    // the id of the observation whose reply shows the generation bump
    // — that request carried the recalibration inline.
    let mut recalibrating_id = None;
    let mut generation = 1.0;
    for interval in 0..6 {
        let trace_id = ft_trace::next_trace_id();
        let obs = format!("{{\"interval\":{interval},\"completions\":1}}");
        let (status, body, echoed) = client
            .request_traced(
                "POST",
                &format!("/campaigns/{id}/observations"),
                Some(&obs),
                Some(trace_id),
            )
            .expect("traced observe");
        assert_eq!(status, 200, "observe failed: {body}");
        assert_eq!(echoed, Some(trace_id));
        let body = serde_json::from_str::<Value>(&body).expect("json");
        let next_generation = num(&body, "generation");
        if next_generation > generation && recalibrating_id.is_none() {
            recalibrating_id = Some(trace_id);
        }
        generation = next_generation;
    }
    let trace_id = recalibrating_id.expect("no recalibration after 6 drifted intervals");

    // The acceptance bar: the recalibrating request's trace shows the
    // full stack, with the reactor hand-off attributed as queue-wait.
    let (status, trace) = request(addr, "GET", &format!("/trace/{trace_id:016x}"), None);
    assert_eq!(status, 200, "recalibrating trace not stored: {trace:?}");
    let spans = spans_of(&trace);
    assert_well_formed(&spans);
    for expected in [
        "server.request.serve",      // server: root request span
        "server.reactor.queue_wait", // server: accept→worker hand-off
        "core.registry.observe",     // registry: report ingestion
        "core.engine.observe",       // engine: kind-polymorphic update
        "core.registry.recalibrate", // registry: drift-triggered resolve
        "core.kernel.build_rows",    // kernel: pmf row construction
        "core.kernel.induct_layer",  // kernel: DP layer induction
        "core.kernel.sweep",         // kernel: monotone sweep
        "exec.pool.dispatch",        // exec: fork-join region
        "core.registry.publish",     // registry: generation swap
    ] {
        assert!(
            spans.iter().any(|s| s.name == expected),
            "missing {expected} in recalibrating trace; got: {:?}",
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }

    // The same id is surfaced as the slow-trace exemplar for the
    // observe endpoint once it is the slowest thing that op has seen.
    let (status, metrics) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let rendered = serde_json::to_string(&metrics).expect("metrics json");
    assert!(
        rendered.contains("exemplar_trace_id"),
        "/metrics carries no exemplar_trace_id field"
    );

    handle.shutdown();
    join.join().expect("server thread");
}
