//! CLI entry point: regenerate the paper's tables and figures.
//!
//! Usage:
//!   experiments [--fast] [--seed S] [--csv DIR] [id ...]
//!
//! Without ids, every experiment runs in paper order.

use ft_sim::{run_by_id, ExpConfig, ALL_IDS};
use std::io::Write as _;

fn main() {
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => cfg.fast = true,
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--csv" => {
                csv_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--csv needs a directory")),
                );
            }
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--fast] [--seed S] [--csv DIR] [--list] [id ...]");
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &ids {
        let started = std::time::Instant::now();
        match run_by_id(id, cfg) {
            Some(reports) => {
                for rep in &reports {
                    let _ = writeln!(out, "{}", rep.to_ascii());
                    if let Some(dir) = &csv_dir {
                        std::fs::create_dir_all(dir).expect("create csv dir");
                        let path = format!("{dir}/{}.csv", rep.id);
                        std::fs::write(&path, rep.to_csv()).expect("write csv");
                    }
                }
                let _ = writeln!(
                    out,
                    "-- {id} done in {:.1}s --\n",
                    started.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
