//! Extension experiment (Section 5.2.5 future work): adaptive arrival-rate
//! prediction on anomalous days.
//!
//! The paper observes both strategies degrade on Jan 1 (a consistent
//! arrival deficit the weekly profile cannot predict) and suggests
//! predicting near-future arrivals from the recent past. This experiment
//! runs the [`ft_core::AdaptivePricer`] against the Fig. 10 leave-one-out
//! setup and compares stranded tasks and cost against the static-trained
//! dynamic policy and the fixed baseline.

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::PaperScenario;
use ft_core::{AdaptiveOptions, AdaptivePricer, PriceController};
use ft_market::ArrivalRate;
use ft_stats::{rng::stream_rng, Poisson, Summary};

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    let test_days: &[usize] = if cfg.fast { &[0, 7] } else { &[0, 7, 14, 21] };
    let trials = if cfg.fast { 20 } else { 60 };
    let nt = scenario.n_intervals();

    let mut rep = Report::new(
        "ext-adaptive",
        "Extension: adaptive arrival correction vs static training (Fig. 10 setup)",
        &[
            "test_day",
            "adaptive_remaining",
            "adaptive_paid",
            "static_remaining",
            "static_paid",
            "final_correction",
        ],
    );
    rep.note("day 0 is the anomalous holiday; adaptive re-estimates arrivals online");

    for &day in test_days {
        let train_days: Vec<usize> = [0usize, 7, 14, 21]
            .into_iter()
            .filter(|&d| d != day)
            .collect();
        let train_rate = scenario.trace.average_day_rate(&train_days);
        let actual = scenario
            .trace
            .day_rate(day)
            .interval_means(scenario.horizon_hours, nt);
        let problem = ft_core::DeadlineProblem::new(
            scenario.n_tasks,
            train_rate.interval_means(scenario.horizon_hours, nt),
            ft_core::ActionSet::from_grid(scenario.grid, &scenario.acceptance),
            ft_core::PenaltyModel::Linear { per_task: 2000.0 },
        );
        let static_policy = match ft_core::solve_truncated(&problem, 1e-8) {
            Ok(p) => p,
            Err(e) => {
                rep.note(format!("day {day}: {e}"));
                continue;
            }
        };

        let mut a_rem = Summary::new();
        let mut a_paid = Summary::new();
        let mut s_rem = Summary::new();
        let mut s_paid = Summary::new();
        let mut last_corr = 1.0;
        for trial in 0..trials {
            let mut rng = stream_rng(cfg.seed, (day * 1000 + trial) as u64);
            // Adaptive run.
            let mut pricer = AdaptivePricer::new(
                problem.clone(),
                AdaptiveOptions {
                    resolve_every: if cfg.fast { 6 } else { 3 },
                    ..Default::default()
                },
            )
            .expect("solvable");
            let mut remaining = scenario.n_tasks;
            let mut paid = 0.0;
            for (t, &mass) in actual.iter().enumerate() {
                let price = pricer.price(remaining, t);
                let mean = mass * scenario.acceptance.p_f64(price);
                let raw = Poisson::new(mean).sample(&mut rng);
                let done = raw.min(remaining as u64) as u32;
                paid += done as f64 * price;
                remaining -= done;
                // An interval that exhausted the batch is right-censored.
                if raw > done as u64 || remaining == 0 {
                    pricer.observe_censored();
                } else {
                    pricer.observe(price, done as u64);
                }
                if remaining == 0 {
                    break;
                }
            }
            a_rem.push(remaining as f64);
            a_paid.push(paid);
            last_corr = pricer.correction();
            // Static run on an identical arrival sample stream.
            let mut rng = stream_rng(cfg.seed, (day * 1000 + trial) as u64);
            let mut remaining = scenario.n_tasks;
            let mut paid = 0.0;
            for (t, &mass) in actual.iter().enumerate() {
                let price = static_policy.price(remaining, t);
                let mean = mass * scenario.acceptance.p_f64(price);
                let done = Poisson::new(mean).sample(&mut rng).min(remaining as u64) as u32;
                paid += done as f64 * price;
                remaining -= done;
                if remaining == 0 {
                    break;
                }
            }
            s_rem.push(remaining as f64);
            s_paid.push(paid);
        }
        rep.row(vec![
            day.to_string(),
            Report::fmt(a_rem.mean()),
            Report::fmt(a_paid.mean()),
            Report::fmt(s_rem.mean()),
            Report::fmt(s_paid.mean()),
            Report::fmt(last_corr),
        ]);
    }
    vec![rep]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::PriceGrid;

    fn small_scenario() -> PaperScenario {
        let mut s = PaperScenario::new(85);
        s.n_tasks = 24;
        s.horizon_hours = 6.0;
        s.grid = PriceGrid::new(0, 40);
        s
    }

    #[test]
    fn adaptive_no_worse_on_anomalous_day() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let rows = &reports[0].rows;
        assert!(!rows.is_empty());
        let day0 = &rows[0];
        let adaptive: f64 = day0[1].parse().unwrap();
        let static_rem: f64 = day0[3].parse().unwrap();
        assert!(
            adaptive <= static_rem + 0.5,
            "adaptive ({adaptive}) should not strand more than static ({static_rem})"
        );
    }

    #[test]
    fn correction_detects_the_holiday_deficit() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let day0 = &reports[0].rows[0];
        let corr: f64 = day0[5].parse().unwrap();
        assert!(
            corr < 0.85,
            "day-0 correction {corr} should reflect the arrival deficit"
        );
    }

    #[test]
    fn normal_day_correction_near_unity() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        if reports[0].rows.len() >= 2 {
            let corr: f64 = reports[0].rows[1][5].parse().unwrap();
            assert!(
                (0.75..1.35).contains(&corr),
                "normal-day correction {corr} should be near 1"
            );
        }
    }
}
