//! Fig. 1: tasks completed per 6-hour window over a 4-week tracker trace.
//!
//! The paper's figure shows the weekly periodicity of marketplace
//! throughput; we regenerate it from the synthetic tracker and additionally
//! report the per-day-of-week means that make the periodicity explicit.

use super::ExpConfig;
use crate::report::Report;
use ft_market::{TrackerConfig, TrackerTrace};
use ft_stats::{rng::stream_rng, Summary};

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let mut rng = stream_rng(cfg.seed, 1);
    let trace = TrackerTrace::generate(TrackerConfig::january_2014(), &mut rng);

    let mut series = Report::new(
        "fig1",
        "Fig. 1: arrivals per 6-hour window, 4 weeks (synthetic tracker)",
        &["day", "hour", "count"],
    );
    series.note("paper: mturk-tracker 1/1/2014-1/28/2014; weekly periodic pattern");
    let windows = trace.aggregate(6.0);
    let limit = if cfg.fast { 28 } else { windows.len() };
    for &(start, count) in windows.iter().take(limit) {
        let day = (start / 24.0).floor() as u32;
        let hour = start.rem_euclid(24.0) as u32;
        series.row(vec![day.to_string(), hour.to_string(), count.to_string()]);
    }

    let mut weekly = Report::new(
        "fig1-weekly",
        "Fig. 1 (derived): mean daily arrivals by day-of-week",
        &["weekday_index", "mean_arrivals", "std"],
    );
    weekly.note("day 0 = trace start (a Wednesday holiday in the jan-2014 config)");
    let mut per_dow: Vec<Summary> = (0..7).map(|_| Summary::new()).collect();
    for d in 0..trace.config.total_days() {
        let total: u64 = trace.day_counts(d).iter().sum();
        per_dow[d % 7].push(total as f64);
    }
    for (i, s) in per_dow.iter().enumerate() {
        weekly.row(vec![
            i.to_string(),
            Report::fmt(s.mean()),
            Report::fmt(s.std_dev()),
        ]);
    }
    vec![series, weekly]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_expected_shapes() {
        let reports = run(ExpConfig::fast());
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].rows.len(), 28);
        assert_eq!(reports[1].rows.len(), 7);
    }

    #[test]
    fn full_run_covers_four_weeks() {
        let reports = run(ExpConfig::default());
        // 28 days × 4 windows.
        assert_eq!(reports[0].rows.len(), 112);
    }

    #[test]
    fn counts_are_positive() {
        let reports = run(ExpConfig::fast());
        for row in &reports[0].rows {
            let c: u64 = row[2].parse().unwrap();
            assert!(c > 1000, "6h window count suspiciously low: {c}");
        }
    }
}
