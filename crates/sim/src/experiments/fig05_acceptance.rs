//! Fig. 5: utility-theory simulation of the task acceptance probability
//! and its multinomial-logit regression fit (Section 5.1.1).
//!
//! 100 marketplace tasks; competitor utilities `N(μ_i, σ_i²)` with
//! `μ_i ~ N(0,1)`, `σ_i ~ U[0,1]`; our task's mean utility is `c/50 − 1`.
//! The simulated win probability is fit with a 1-feature logistic model
//! (Eq. 2 reduces to `p = σ(β·u₁ − const)` under the fixed-competitor-mass
//! assumption).

use super::ExpConfig;
use crate::report::Report;
use ft_market::logit::{UtilitySim, UtilitySimConfig};
use ft_stats::{rng::stream_rng, Logistic};

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let mut rng = stream_rng(cfg.seed, 5);
    let sim_cfg = UtilitySimConfig {
        samples_per_price: if cfg.fast { 8_000 } else { 40_000 },
        ..Default::default()
    };
    let sim = UtilitySim::new(sim_cfg);
    let step = if cfg.fast { 10 } else { 5 };
    let points = sim.sweep(100, step, &mut rng);

    // Fit p(c) = σ(β·(c/50 − 1) + const) — the Eq. 2 regression curve.
    let feats: Vec<Vec<f64>> = points
        .iter()
        .map(|&(c, _)| vec![c / sim_cfg.price_divisor - sim_cfg.price_shift])
        .collect();
    let ys: Vec<f64> = points.iter().map(|&(_, p)| p).collect();
    let fit = Logistic::fit(&feats, &ys).expect("logistic fit failed");
    let beta = fit.coefficients[0];

    let mut report = Report::new(
        "fig5",
        "Fig. 5: simulated acceptance probability vs logit regression fit",
        &["reward_c", "simulated_p", "fitted_p"],
    );
    report.note(format!(
        "fitted utility coefficient beta = {beta:.2} (paper regression: beta = 2.6)"
    ));
    for (&(c, p), f) in points.iter().zip(&feats) {
        report.row(vec![
            Report::fmt(c),
            Report::fmt(p),
            Report::fmt(fit.predict(f)),
        ]);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_tracks_simulation() {
        let reports = run(ExpConfig::fast());
        let rows = &reports[0].rows;
        assert!(rows.len() >= 10);
        // Fitted curve close to simulated everywhere; acceptance lives in
        // [0, ~0.05] so the tolerance is tight in absolute terms.
        for row in rows {
            let sim: f64 = row[1].parse().unwrap();
            let fit: f64 = row[2].parse().unwrap();
            assert!(
                (sim - fit).abs() < 0.02,
                "poor fit at c={}: sim={sim}, fit={fit}",
                row[0]
            );
        }
    }

    #[test]
    fn acceptance_grows_with_reward() {
        let reports = run(ExpConfig::fast());
        let rows = &reports[0].rows;
        let first: f64 = rows[0][2].parse().unwrap();
        let last: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(last > first, "fitted p must increase with c");
    }

    #[test]
    fn beta_is_positive_and_sane() {
        let reports = run(ExpConfig::fast());
        let note = &reports[0].notes[0];
        let beta: f64 = note
            .split('=')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((0.5..10.0).contains(&beta), "beta = {beta}");
    }
}
