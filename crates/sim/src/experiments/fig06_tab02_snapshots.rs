//! Fig. 6 / Table 2: HIT-group snapshots (wage/sec vs workload/hour) and
//! the least-squares estimates of the shared wage coefficient and per-type
//! bias (Section 5.1.2), plus the Eq. 13-style derivation of `p(c)`.

use super::ExpConfig;
use crate::report::Report;
use ft_market::tracker::{generate_snapshots, SnapshotConfig};
use ft_market::TaskType;
use ft_stats::{rng::stream_rng, SimpleOls};

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let mut rng = stream_rng(cfg.seed, 6);
    let snap_cfg = SnapshotConfig::default();
    let n = if cfg.fast { 60 } else { 100 };
    let obs = generate_snapshots(n, &snap_cfg, &mut rng);

    // Fig. 6: the raw scatter (subsampled for readability).
    let mut scatter = Report::new(
        "fig6",
        "Fig. 6: wage per second vs completed workload per hour",
        &["task_type", "wage_per_sec", "workload_per_hour"],
    );
    for o in obs.iter().take(40) {
        scatter.row(vec![
            o.task_type.name().into(),
            Report::fmt(o.wage_per_sec),
            Report::fmt(o.workload_per_hour),
        ]);
    }

    // Table 2: per-type OLS of log(workload/hour) on wage/sec.
    let mut table2 = Report::new(
        "tab2",
        "Table 2: least-squares regression per task type",
        &[
            "task_type",
            "linear_coeff",
            "bias",
            "r_squared",
            "paper_coeff",
            "paper_bias",
        ],
    );
    table2.note("paper: Categorization 748 / 3.66, Data Collection 809 / 6.28");
    let mut fits = Vec::new();
    #[allow(clippy::approx_constant)] // 6.28 is the paper's Table 2 bias
    for (ty, paper_coeff, paper_bias) in [
        (TaskType::Categorization, 748.0, 3.66),
        (TaskType::DataCollection, 809.0, 6.28),
    ] {
        let xs: Vec<f64> = obs
            .iter()
            .filter(|o| o.task_type == ty)
            .map(|o| o.wage_per_sec)
            .collect();
        let ys: Vec<f64> = obs
            .iter()
            .filter(|o| o.task_type == ty)
            .map(|o| o.workload_per_hour.ln())
            .collect();
        let fit = SimpleOls::fit(&xs, &ys);
        table2.row(vec![
            ty.name().into(),
            Report::fmt(fit.slope),
            Report::fmt(fit.intercept),
            Report::fmt(fit.r_squared),
            Report::fmt(paper_coeff),
            Report::fmt(paper_bias),
        ]);
        fits.push((ty, fit));
    }

    // Eq. 13 derivation: for a Data Collection task with 120s per task on a
    // ≈6000 tasks/hour marketplace,
    //   p(c) = exp(α·(c/100)/120 + bias) / (total · 120)  … rearranged into
    //   the logit form with s = 100·120/α, and M = total·120/exp(bias)… the
    //   paper's numbers give s ≈ 15, M ≈ 2000.
    let mut eq13 = Report::new(
        "tab2-eq13",
        "Derived Eq. 13 parameters from the Table 2 fit",
        &["param", "derived", "paper"],
    );
    let dc = &fits
        .iter()
        .find(|(ty, _)| *ty == TaskType::DataCollection)
        .expect("data collection fit")
        .1;
    let task_secs = 120.0;
    let s = 100.0 * task_secs / dc.slope; // c in cents → dollars /100
    eq13.row(vec!["s".into(), Report::fmt(s), "15".into()]);
    eq13.note("b and M are derived jointly from the marketplace total throughput (~6000/hr)");
    vec![scatter, table2, eq13]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_generator_coefficients() {
        let reports = run(ExpConfig::default());
        let table2 = &reports[1];
        for row in &table2.rows {
            let coeff: f64 = row[1].parse().unwrap();
            // Generator α = 780 shared between types; OLS should land within
            // ±15% with 50 points per type.
            assert!(
                (600.0..1000.0).contains(&coeff),
                "coefficient {coeff} far from generator value"
            );
            let r2: f64 = row[3].parse().unwrap();
            assert!(r2 > 0.5, "regression should explain most variance, r2={r2}");
        }
    }

    #[test]
    fn data_collection_bias_higher() {
        let reports = run(ExpConfig::default());
        let rows = &reports[1].rows;
        let cat_bias: f64 = rows[0][2].parse().unwrap();
        let dc_bias: f64 = rows[1][2].parse().unwrap();
        assert!(
            dc_bias > cat_bias + 1.0,
            "workers must prefer data collection (paper: 6.28 vs 3.66)"
        );
    }

    #[test]
    fn derived_s_near_paper() {
        let reports = run(ExpConfig::default());
        let s: f64 = reports[2].rows[0][1].parse().unwrap();
        assert!((10.0..25.0).contains(&s), "derived s = {s}, paper ≈ 15");
    }
}
