//! Fig. 7(a): average task reward vs expected number of remaining tasks,
//! dynamic (MDP) pricing vs binary-search fixed pricing (Section 5.2.1).
//!
//! Paper headline: at 99.9% completion the dynamic strategy averages
//! ≈12–12.5¢ (≈3% over the theoretical bound c₀ ≈ 12) while the fixed
//! strategy needs 16¢ — a ≈33% premium for fixed, i.e. up to ~25–30%
//! savings from dynamic pricing.

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::PaperScenario;
use ft_core::baseline::evaluate_fixed_price;
use ft_core::CalibrateOptions;
use ft_market::AcceptanceFn;

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    let problem = scenario.deadline_problem(100.0);
    let c0 = scenario.c0();

    let bounds: &[f64] = if cfg.fast {
        &[2.0, 0.2]
    } else {
        &[5.0, 2.0, 1.0, 0.5, 0.2, 0.1, 0.05]
    };
    let opts = CalibrateOptions {
        truncation_eps: 1e-8,
        max_iters: if cfg.fast { 18 } else { 30 },
        ..Default::default()
    };

    let mut dynamic = Report::new(
        "fig7a-dynamic",
        "Fig. 7(a): dynamic pricing — avg reward vs E[remaining]",
        &[
            "target_remaining",
            "achieved_remaining",
            "avg_reward",
            "expected_paid",
        ],
    );
    if let Some(c0) = c0 {
        dynamic.note(format!("theoretical average-reward lower bound c0 = {c0}"));
    }
    dynamic.note("paper: dynamic stays within ~3% of c0 even at 99.9% completion");
    for &bound in bounds {
        match ft_core::calibrate_penalty(&problem, bound, opts) {
            Ok(cal) => {
                dynamic.row(vec![
                    Report::fmt(bound),
                    Report::fmt(cal.outcome.expected_remaining),
                    Report::fmt(cal.outcome.average_reward()),
                    Report::fmt(cal.outcome.expected_paid),
                ]);
            }
            Err(e) => {
                dynamic.note(format!("bound {bound}: {e}"));
            }
        }
    }

    let mut fixed = Report::new(
        "fig7a-fixed",
        "Fig. 7(a): fixed pricing — avg reward vs E[remaining]",
        &["reward", "expected_remaining", "total_cost"],
    );
    fixed.note("paper: fixed needs 16 cents for 99.9% completion (≈33% over dynamic)");
    let total = problem.total_arrivals();
    let lo = c0.map_or(8.0, |c| (c - 2.0).max(1.0)) as u32;
    for c in lo..=(lo + 8) {
        let p = scenario.acceptance.p(c);
        let (paid, remaining, _done) = evaluate_fixed_price(c as f64, p, total, scenario.n_tasks);
        let _ = paid;
        fixed.row(vec![
            c.to_string(),
            Report::fmt(remaining),
            Report::fmt(c as f64 * scenario.n_tasks as f64),
        ]);
    }

    vec![dynamic, fixed]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PaperScenario;
    use ft_market::PriceGrid;

    fn small_scenario() -> PaperScenario {
        let mut s = PaperScenario::new(77);
        s.n_tasks = 30;
        s.horizon_hours = 6.0;
        s.grid = PriceGrid::new(0, 40);
        // Scale the marketplace down so 30 tasks in 6h is comparably tight.
        s.trained_rate = s.trained_rate.scaled(0.3);
        s
    }

    #[test]
    fn dynamic_dominates_fixed_at_matched_remaining() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let dynamic = &reports[0];
        let fixed = &reports[1];
        assert!(
            !dynamic.rows.is_empty(),
            "no dynamic rows: {:?}",
            dynamic.notes
        );
        // For each dynamic row, find a fixed row with >= remaining tasks
        // (i.e. weakly worse completion) and compare total cost.
        for drow in &dynamic.rows {
            let d_rem: f64 = drow[1].parse().unwrap();
            let d_paid: f64 = drow[3].parse().unwrap();
            for frow in &fixed.rows {
                let f_rem: f64 = frow[1].parse().unwrap();
                let f_cost: f64 = frow[2].parse().unwrap();
                if f_rem <= d_rem + 1e-9 {
                    // Fixed completes at least as much; it must not be
                    // cheaper than the optimal dynamic policy.
                    assert!(
                        f_cost >= d_paid - 1e-6,
                        "fixed ({f_cost}) beat dynamic ({d_paid}) at remaining {f_rem} <= {d_rem}"
                    );
                }
            }
        }
    }

    #[test]
    fn achieved_remaining_meets_target() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        for row in &reports[0].rows {
            let target: f64 = row[0].parse().unwrap();
            let achieved: f64 = row[1].parse().unwrap();
            assert!(achieved <= target + 1e-6);
        }
    }

    #[test]
    fn avg_reward_above_c0() {
        let s = small_scenario();
        let c0 = s.c0();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        if let Some(c0) = c0 {
            for row in &reports[0].rows {
                let avg: f64 = row[2].parse().unwrap();
                // c0 is a bound for strategies that finish (almost) all
                // tasks; allow slack for loose targets.
                let target: f64 = row[0].parse().unwrap();
                if target <= 0.5 {
                    assert!(avg > c0 * 0.9, "avg reward {avg} below 0.9·c0 ({c0})");
                }
            }
        }
    }
}
