//! Fig. 7(b): percentage cost reduction of dynamic over fixed pricing for
//! varying batch size `N` and deadline `T` (Section 5.2.2).
//!
//! Paper shape: the reduction *decreases* with `N` and *increases* with
//! `T` — more slack means more opportunity to plan ahead.

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::{compare_dynamic_vs_fixed, PaperScenario};
use ft_core::{ActionSet, CalibrateOptions, DeadlineProblem, PenaltyModel};
use ft_market::ArrivalRate;

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

fn problem_for(scenario: &PaperScenario, n: u32, hours: f64) -> DeadlineProblem {
    let n_intervals = (hours * 60.0 / scenario.interval_minutes).round() as usize;
    DeadlineProblem::new(
        n,
        scenario.trained_rate.interval_means(hours, n_intervals),
        ActionSet::from_grid(scenario.grid, &scenario.acceptance),
        PenaltyModel::Linear { per_task: 100.0 },
    )
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    let confidence = 0.999;
    let opts = CalibrateOptions {
        truncation_eps: 1e-8,
        max_iters: if cfg.fast { 16 } else { 25 },
        ..Default::default()
    };

    // Below N ≈ 100 the paper-scale marketplace completes the batch even
    // at a 0-cent reward (the acceptance floor p(0) ≈ 7e-4 yields ~100
    // free completions/day), so the sweep starts at 100.
    let (ns, ts): (Vec<u32>, Vec<f64>) = if cfg.fast {
        (
            vec![scenario.n_tasks / 2, scenario.n_tasks],
            vec![scenario.horizon_hours / 2.0, scenario.horizon_hours],
        )
    } else {
        (vec![100, 200, 400, 600, 800], vec![6.0, 12.0, 24.0, 48.0])
    };

    let mut by_n = Report::new(
        "fig7b-n",
        "Fig. 7(b): % cost reduction vs batch size N (T fixed)",
        &["n_tasks", "dynamic_cost", "fixed_cost", "reduction_pct"],
    );
    by_n.note("paper: reduction decreases as N increases");
    // Anchor the N sweep at the scenario's default deadline and the T
    // sweep at the default batch size (the paper's defaults: 24h, 200).
    let t_fixed = scenario.horizon_hours;
    for &n in &ns {
        let p = problem_for(scenario, n, t_fixed);
        match compare_dynamic_vs_fixed(&p, confidence, opts) {
            Ok(c) => {
                by_n.row(vec![
                    n.to_string(),
                    Report::fmt(c.dynamic_cost),
                    Report::fmt(c.fixed_cost),
                    Report::fmt(c.reduction * 100.0),
                ]);
            }
            Err(e) => {
                by_n.note(format!("N={n}: {e}"));
            }
        }
    }

    let mut by_t = Report::new(
        "fig7b-t",
        "Fig. 7(b): % cost reduction vs deadline T (N fixed)",
        &["hours", "dynamic_cost", "fixed_cost", "reduction_pct"],
    );
    by_t.note("paper: reduction increases as T increases");
    let n_fixed = scenario.n_tasks;
    for &t in &ts {
        let p = problem_for(scenario, n_fixed, t);
        match compare_dynamic_vs_fixed(&p, confidence, opts) {
            Ok(c) => {
                by_t.row(vec![
                    Report::fmt(t),
                    Report::fmt(c.dynamic_cost),
                    Report::fmt(c.fixed_cost),
                    Report::fmt(c.reduction * 100.0),
                ]);
            }
            Err(e) => {
                by_t.note(format!("T={t}: {e}"));
            }
        }
    }

    vec![by_n, by_t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::PriceGrid;

    fn small_scenario() -> PaperScenario {
        let mut s = PaperScenario::new(78);
        s.n_tasks = 24;
        s.horizon_hours = 6.0;
        s.grid = PriceGrid::new(0, 40);
        s.trained_rate = s.trained_rate.scaled(0.3);
        s
    }

    #[test]
    fn reductions_are_positive() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let mut seen = 0;
        for rep in &reports {
            for row in &rep.rows {
                let red: f64 = row[3].parse().unwrap();
                assert!(
                    red > -1.0,
                    "dynamic should never lose meaningfully to fixed: {red}%"
                );
                seen += 1;
            }
        }
        assert!(seen >= 3, "too few comparison points ran");
    }

    #[test]
    fn longer_deadline_bigger_gain() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let by_t = &reports[1];
        if by_t.rows.len() >= 2 {
            let short: f64 = by_t.rows[0][3].parse().unwrap();
            let long: f64 = by_t.rows[by_t.rows.len() - 1][3].parse().unwrap();
            assert!(
                long >= short - 3.0,
                "paper trend: reduction grows with T (short={short}%, long={long}%)"
            );
        }
    }
}
