//! Fig. 8(a–c): percentage cost reduction when the acceptance-function
//! parameters `s`, `b`, `M` vary (Section 5.2.2).
//!
//! Paper shape: the gain is stable in `s`, lower for more intrinsically
//! attractive tasks (lower `b`), and higher when the marketplace has fewer
//! competing tasks (lower `M`).

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::{compare_dynamic_vs_fixed, PaperScenario};
use ft_core::{ActionSet, CalibrateOptions, DeadlineProblem, PenaltyModel};
use ft_market::LogitAcceptance;

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

fn problem_with_acceptance(scenario: &PaperScenario, acc: LogitAcceptance) -> DeadlineProblem {
    DeadlineProblem::new(
        scenario.n_tasks,
        scenario.interval_arrivals(),
        ActionSet::from_grid(scenario.grid, &acc),
        PenaltyModel::Linear { per_task: 100.0 },
    )
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    let base = scenario.acceptance;
    let opts = CalibrateOptions {
        truncation_eps: 1e-8,
        max_iters: if cfg.fast { 16 } else { 25 },
        ..Default::default()
    };
    let confidence = 0.999;

    let sweep = |id: &str, title: &str, values: Vec<(String, LogitAcceptance)>, trend: &str| {
        let mut rep = Report::new(
            id,
            title,
            &["param_value", "dynamic_cost", "fixed_cost", "reduction_pct"],
        );
        rep.note(trend.to_string());
        for (label, acc) in values {
            let p = problem_with_acceptance(scenario, acc);
            match compare_dynamic_vs_fixed(&p, confidence, opts) {
                Ok(c) => {
                    rep.row(vec![
                        label,
                        Report::fmt(c.dynamic_cost),
                        Report::fmt(c.fixed_cost),
                        Report::fmt(c.reduction * 100.0),
                    ]);
                }
                Err(e) => {
                    rep.note(format!("{label}: {e}"));
                }
            }
        }
        rep
    };

    let s_values: Vec<f64> = if cfg.fast {
        vec![base.s * 0.75, base.s * 1.25]
    } else {
        vec![
            base.s * 0.67,
            base.s * 0.83,
            base.s,
            base.s * 1.17,
            base.s * 1.33,
        ]
    };
    let b_values: Vec<f64> = if cfg.fast {
        vec![base.b - 0.5, base.b + 0.5]
    } else {
        vec![
            base.b - 0.6,
            base.b - 0.3,
            base.b,
            base.b + 0.3,
            base.b + 0.6,
        ]
    };
    let m_values: Vec<f64> = if cfg.fast {
        vec![base.m * 0.5, base.m * 2.0]
    } else {
        vec![
            base.m * 0.5,
            base.m * 0.75,
            base.m,
            base.m * 1.5,
            base.m * 2.0,
        ]
    };

    let a = sweep(
        "fig8a",
        "Fig. 8(a): % cost reduction vs price sensitivity s",
        s_values
            .into_iter()
            .map(|s| (Report::fmt(s), LogitAcceptance::new(s, base.b, base.m)))
            .collect(),
        "paper: gain is stable in s",
    );
    let b = sweep(
        "fig8b",
        "Fig. 8(b): % cost reduction vs intrinsic attractiveness b",
        b_values
            .into_iter()
            .map(|b| (Report::fmt(b), LogitAcceptance::new(base.s, b, base.m)))
            .collect(),
        "paper: gain is lower when the task is intrinsically more attractive (lower b)",
    );
    let m = sweep(
        "fig8c",
        "Fig. 8(c): % cost reduction vs competing-task mass M",
        m_values
            .into_iter()
            .map(|m| (Report::fmt(m), LogitAcceptance::new(base.s, base.b, m)))
            .collect(),
        "paper: gain is higher when there are fewer competing tasks (lower M)",
    );
    vec![a, b, m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::PriceGrid;

    fn small_scenario() -> PaperScenario {
        let mut s = PaperScenario::new(79);
        s.n_tasks = 24;
        s.horizon_hours = 6.0;
        s.grid = PriceGrid::new(0, 40);
        s.trained_rate = s.trained_rate.scaled(0.3);
        s
    }

    #[test]
    fn produces_three_sweeps_with_rows() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        assert_eq!(reports.len(), 3);
        for rep in &reports {
            assert!(
                !rep.rows.is_empty(),
                "sweep {} produced no rows ({:?})",
                rep.id,
                rep.notes
            );
        }
    }

    #[test]
    fn reductions_within_plausible_range() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        for rep in &reports {
            for row in &rep.rows {
                let red: f64 = row[3].parse().unwrap();
                assert!(
                    (-2.0..60.0).contains(&red),
                    "{}: implausible reduction {red}%",
                    rep.id
                );
            }
        }
    }
}
