//! Fig. 8(d): effect of the time-interval granularity on the average task
//! price and on solver runtime (Section 5.2.3).
//!
//! Paper shape: the average price increases mildly as intervals get
//! coarser (the strategy space shrinks), while solver runtime stays
//! roughly flat thanks to Poisson truncation (coarser intervals have
//! larger λ_t but fewer intervals).

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::PaperScenario;
use ft_core::CalibrateOptions;
use std::time::Instant;

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    let minutes: Vec<f64> = if cfg.fast {
        vec![scenario.interval_minutes, scenario.interval_minutes * 3.0]
    } else {
        vec![20.0, 30.0, 40.0, 60.0, 90.0, 120.0]
    };
    let opts = CalibrateOptions {
        truncation_eps: 1e-8,
        max_iters: if cfg.fast { 14 } else { 22 },
        ..Default::default()
    };
    let bound = 0.1;

    let mut rep = Report::new(
        "fig8d",
        "Fig. 8(d): average task price and solve time vs interval length",
        &["interval_min", "n_intervals", "avg_reward", "solve_ms"],
    );
    rep.note("paper: avg price rises mildly with coarser intervals; runtime stays flat");
    for &m in &minutes {
        let mut s = scenario.clone();
        s.interval_minutes = m;
        let problem = s.deadline_problem(100.0);
        let start = Instant::now();
        match ft_core::calibrate_penalty(&problem, bound, opts) {
            Ok(cal) => {
                let ms = start.elapsed().as_secs_f64() * 1000.0;
                rep.row(vec![
                    Report::fmt(m),
                    s.n_intervals().to_string(),
                    Report::fmt(cal.outcome.average_reward()),
                    Report::fmt(ms),
                ]);
            }
            Err(e) => {
                rep.note(format!("{m} minutes: {e}"));
            }
        }
    }
    vec![rep]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::PriceGrid;

    fn small_scenario() -> PaperScenario {
        let mut s = PaperScenario::new(80);
        s.n_tasks = 24;
        s.horizon_hours = 6.0;
        s.grid = PriceGrid::new(0, 40);
        s.trained_rate = s.trained_rate.scaled(0.3);
        s
    }

    #[test]
    fn coarser_intervals_not_cheaper() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let rows = &reports[0].rows;
        assert!(
            rows.len() >= 2,
            "need at least two granularities: {:?}",
            reports[0].notes
        );
        let fine: f64 = rows[0][2].parse().unwrap();
        let coarse: f64 = rows[rows.len() - 1][2].parse().unwrap();
        // Shrinking the strategy space cannot reduce cost; tiny numerical
        // slack allowed (calibration tolerance).
        assert!(
            coarse >= fine - 0.35,
            "coarse grid ({coarse}) beat fine grid ({fine})"
        );
    }

    #[test]
    fn interval_counts_match_minutes() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        for row in &reports[0].rows {
            let m: f64 = row[0].parse().unwrap();
            let nt: usize = row[1].parse().unwrap();
            assert_eq!(nt, (s.horizon_hours * 60.0 / m).round() as usize);
        }
    }
}
