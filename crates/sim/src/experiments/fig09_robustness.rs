//! Fig. 9: robustness to mis-estimated acceptance parameters
//! (Section 5.2.4).
//!
//! The dynamic policy is trained on the default `p̂(c)` and executed
//! against a true `p(c)` with one parameter perturbed; the paper's finding
//! is that the dynamic strategy still finishes essentially everything
//! (it auto-escalates prices), while fixed pricing strands tasks.

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::PaperScenario;
use ft_core::baseline::evaluate_fixed_price;
use ft_core::CalibrateOptions;
use ft_market::{AcceptanceFn, LogitAcceptance};

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    let base = scenario.acceptance;
    let opts = CalibrateOptions {
        truncation_eps: 1e-8,
        max_iters: if cfg.fast { 16 } else { 25 },
        ..Default::default()
    };
    // Train once on the (assumed) default model, tuned to the same 99.9%
    // completion target as the fixed baseline (bound 0.001 via Markov).
    let problem = scenario.deadline_problem(100.0);
    let dynamic = match ft_core::calibrate_penalty(&problem, 0.001, opts) {
        Ok(c) => c,
        Err(e) => {
            let mut rep = Report::new("fig9", "Fig. 9 (failed)", &["error"]);
            rep.row(vec![e.to_string()]);
            return vec![rep];
        }
    };
    let fixed = scenario.solve_fixed(0.999).ok();
    let arrivals = scenario.interval_arrivals();
    let total: f64 = arrivals.iter().sum();

    let sweep = |id: &str, title: &str, variants: Vec<(String, LogitAcceptance)>| -> Report {
        let mut rep = Report::new(
            id,
            title,
            &[
                "true_param",
                "dynamic_remaining",
                "dynamic_avg_reward",
                "fixed_price",
                "fixed_remaining",
            ],
        );
        rep.note("policies trained on default parameters, executed on the perturbed truth");
        for (label, truth) in variants {
            let out =
                dynamic
                    .policy
                    .evaluate_against(&arrivals, |c| truth.p_f64(c), &problem.penalty);
            let (f_price, f_rem) = match &fixed {
                Some(f) => {
                    let p_true = truth.p(f.reward as u32);
                    let (_, rem, _) =
                        evaluate_fixed_price(f.reward, p_true, total, scenario.n_tasks);
                    (Report::fmt(f.reward), Report::fmt(rem))
                }
                None => ("n/a".into(), "n/a".into()),
            };
            rep.row(vec![
                label,
                Report::fmt(out.expected_remaining),
                Report::fmt(out.average_reward()),
                f_price,
                f_rem,
            ]);
        }
        rep
    };

    let factors: Vec<f64> = if cfg.fast {
        vec![0.8, 1.2]
    } else {
        vec![0.7, 0.85, 1.0, 1.15, 1.3]
    };
    let s_sweep = sweep(
        "fig9-s",
        "Fig. 9(a,b): true s differs from trained s",
        factors
            .iter()
            .map(|f| {
                (
                    Report::fmt(base.s * f),
                    LogitAcceptance::new(base.s * f, base.b, base.m),
                )
            })
            .collect(),
    );
    let deltas: Vec<f64> = if cfg.fast {
        vec![-0.8, 0.8]
    } else {
        vec![-0.8, -0.4, 0.0, 0.4, 0.8]
    };
    let b_sweep = sweep(
        "fig9-b",
        "Fig. 9(c,d): true b differs from trained b",
        deltas
            .iter()
            .map(|d| {
                (
                    Report::fmt(base.b + d),
                    LogitAcceptance::new(base.s, base.b + d, base.m),
                )
            })
            .collect(),
    );
    let m_sweep = sweep(
        "fig9-m",
        "Fig. 9(e,f): true M differs from trained M",
        factors
            .iter()
            .map(|f| {
                (
                    Report::fmt(base.m * f),
                    LogitAcceptance::new(base.s, base.b, base.m * f),
                )
            })
            .collect(),
    );
    vec![s_sweep, b_sweep, m_sweep]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::PriceGrid;

    fn small_scenario() -> PaperScenario {
        let mut s = PaperScenario::new(81);
        s.n_tasks = 24;
        s.horizon_hours = 6.0;
        s.grid = PriceGrid::new(0, 40);
        s.trained_rate = s.trained_rate.scaled(0.3);
        s
    }

    #[test]
    fn dynamic_stays_near_zero_remaining() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        for rep in &reports {
            for row in &rep.rows {
                let dyn_rem: f64 = row[1].parse().unwrap();
                // The paper's headline: dynamic remains ≈0 under
                // mis-estimation. The fast sweep uses harsher perturbations
                // (±0.8 on b ≈ a 2.2× acceptance swing) than the paper's
                // plots, so allow ~12% of the 24-task batch at the extreme.
                assert!(
                    dyn_rem < 3.0,
                    "{}: dynamic stranded {dyn_rem} tasks at {}",
                    rep.id,
                    row[0]
                );
            }
        }
    }

    #[test]
    fn dynamic_beats_fixed_under_adverse_truth() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let mut fixed_fails = 0;
        for rep in &reports {
            for row in &rep.rows {
                let dyn_rem: f64 = row[1].parse().unwrap();
                if let Ok(f_rem) = row[4].parse::<f64>() {
                    assert!(
                        dyn_rem <= f_rem + 0.5,
                        "{}: dynamic ({dyn_rem}) worse than fixed ({f_rem})",
                        rep.id
                    );
                    if f_rem > 1.0 {
                        fixed_fails += 1;
                    }
                }
            }
        }
        assert!(
            fixed_fails >= 1,
            "at least one adverse truth should break the fixed strategy"
        );
    }

    #[test]
    fn adverse_truth_raises_dynamic_price() {
        // Fig. 9's right-hand panels: the dynamic policy escalates its
        // average reward when the truth is worse than trained.
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let b_rows = &reports[1].rows; // b sweep: higher b = less attractive
        if b_rows.len() >= 2 {
            let easy: f64 = b_rows[0][2].parse().unwrap();
            let hard: f64 = b_rows[b_rows.len() - 1][2].parse().unwrap();
            assert!(
                hard > easy,
                "avg reward should rise when the task is truly less attractive"
            );
        }
    }
}
