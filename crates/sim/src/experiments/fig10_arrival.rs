//! Fig. 10: sensitivity to arrival-rate prediction error (Section 5.2.5).
//!
//! Four test days (one of them the anomalous "Jan 1"); for each, the
//! policy is trained on the average of the other three days and executed
//! against the test day's actual arrivals. Paper finding: both strategies
//! are stable under random spikes but degrade on the consistently-low
//! holiday; the dynamic strategy degrades more gracefully.

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::PaperScenario;
use ft_core::baseline::evaluate_fixed_price;
use ft_core::{ActionSet, CalibrateOptions, DeadlineProblem, PenaltyModel};
use ft_market::{AcceptanceFn, ArrivalRate};

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    // Test days: the four same-weekday days (day 0 is the anomaly).
    let test_days: Vec<usize> = vec![0, 7, 14, 21];
    let opts = CalibrateOptions {
        truncation_eps: 1e-8,
        max_iters: if cfg.fast { 16 } else { 25 },
        ..Default::default()
    };

    let mut rep = Report::new(
        "fig10",
        "Fig. 10(a,b): leave-one-out arrival training, per test day",
        &[
            "test_day",
            "train_arrivals",
            "actual_arrivals",
            "dynamic_remaining",
            "dynamic_avg_reward",
            "fixed_price",
            "fixed_remaining",
        ],
    );
    rep.note("day 0 is the anomalous holiday (consistent deviation, Fig. 10(c))");

    let mut detail = Report::new(
        "fig10-rates",
        "Fig. 10(c,d): train vs actual arrival mass per 4-hour block",
        &["test_day", "block_start_h", "train_mass", "actual_mass"],
    );

    for &day in &test_days {
        let train_days: Vec<usize> = test_days.iter().copied().filter(|&d| d != day).collect();
        let train_rate = scenario.trace.average_day_rate(&train_days);
        let actual_rate = scenario.trace.day_rate(day);
        let nt = scenario.n_intervals();
        let train_arr = train_rate.interval_means(scenario.horizon_hours, nt);
        let actual_arr = actual_rate.interval_means(scenario.horizon_hours, nt);

        let problem = DeadlineProblem::new(
            scenario.n_tasks,
            train_arr.clone(),
            ActionSet::from_grid(scenario.grid, &scenario.acceptance),
            PenaltyModel::Linear { per_task: 100.0 },
        );
        let (dyn_rem, dyn_avg) = match ft_core::calibrate_penalty(&problem, 0.1, opts) {
            Ok(cal) => {
                let out = cal.policy.evaluate_against(
                    &actual_arr,
                    |c| scenario.acceptance.p_f64(c),
                    &problem.penalty,
                );
                (out.expected_remaining, out.average_reward())
            }
            Err(_) => (f64::NAN, f64::NAN),
        };
        let fixed = ft_core::solve_fixed_price(
            &problem.actions,
            train_arr.iter().sum(),
            scenario.n_tasks,
            0.999,
        )
        .ok();
        let (f_price, f_rem) = match &fixed {
            Some(f) => {
                let (_, rem, _) = evaluate_fixed_price(
                    f.reward,
                    scenario.acceptance.p(f.reward as u32),
                    actual_arr.iter().sum(),
                    scenario.n_tasks,
                );
                (Report::fmt(f.reward), Report::fmt(rem))
            }
            None => ("n/a".into(), "n/a".into()),
        };
        rep.row(vec![
            day.to_string(),
            Report::fmt(train_arr.iter().sum::<f64>()),
            Report::fmt(actual_arr.iter().sum::<f64>()),
            Report::fmt(dyn_rem),
            Report::fmt(dyn_avg),
            f_price,
            f_rem,
        ]);

        // 4-hour blocks for the rate-comparison panels.
        if day == 0 || day == 21 {
            let blocks = 6;
            let per = nt / blocks;
            for b in 0..blocks {
                let train_mass: f64 = train_arr[b * per..(b + 1) * per].iter().sum();
                let actual_mass: f64 = actual_arr[b * per..(b + 1) * per].iter().sum();
                detail.row(vec![
                    day.to_string(),
                    Report::fmt(b as f64 * scenario.horizon_hours / blocks as f64),
                    Report::fmt(train_mass),
                    Report::fmt(actual_mass),
                ]);
            }
        }
    }
    vec![rep, detail]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::PriceGrid;

    fn small_scenario() -> PaperScenario {
        let mut s = PaperScenario::new(82);
        s.n_tasks = 24;
        s.horizon_hours = 6.0;
        s.grid = PriceGrid::new(0, 30);
        // Keep the real trace (we need its day structure) but shrink the
        // batch so the problem is easy; also scale via trained_rate is not
        // used here (per-day rates are), so shrink N instead.
        s
    }

    #[test]
    fn anomalous_day_sees_fewer_arrivals() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let rows = &reports[0].rows;
        assert_eq!(rows.len(), 4);
        // Day 0: actual < train (holiday). Normal days: ratio near 1.
        let ratio = |row: &Vec<String>| {
            let train: f64 = row[1].parse().unwrap();
            let actual: f64 = row[2].parse().unwrap();
            actual / train
        };
        let r0 = ratio(&rows[0]);
        assert!(r0 < 0.75, "holiday ratio {r0} should be well below 1");
        for row in &rows[1..] {
            let r = ratio(row);
            assert!((0.8..1.25).contains(&r), "normal-day ratio {r}");
        }
    }

    #[test]
    fn normal_days_complete_nearly_everything() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        for row in &reports[0].rows[1..] {
            let dyn_rem: f64 = row[3].parse().unwrap();
            assert!(dyn_rem < 1.5, "normal-day dynamic remaining {dyn_rem}");
        }
    }

    #[test]
    fn rate_detail_covers_two_days() {
        let s = small_scenario();
        let reports = run_with_scenario(&s, ExpConfig::fast());
        let days: std::collections::BTreeSet<String> =
            reports[1].rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(days.len(), 2);
    }
}
