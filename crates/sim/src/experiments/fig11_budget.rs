//! Fig. 11: completion-time distribution of the fixed-budget static
//! pricing strategy (Section 5.3: N = 200, B = 2500¢; mean ≈ 23.2 h with
//! an 18–30 h spread).
//!
//! Sampling: per task, worker arrivals until pickup are geometric
//! (Theorem 5); the total `W` is converted to wall-clock time through the
//! arrival process — given `W` arrivals, the elapsed time satisfies
//! `Λ(T) ~ Gamma(W, 1)`, inverted numerically.

use super::ExpConfig;
use crate::report::Report;
use crate::scenario::PaperScenario;
use ft_core::budget::{solve_budget_hull, BudgetProblem};
use ft_core::ActionSet;
use ft_market::{AcceptanceFn, ArrivalRate, PiecewiseConstantRate};
use ft_stats::{rng::stream_rng, Geometric, Histogram, Normal, Summary};
use rand::Rng;

/// Sample one campaign completion time in hours.
pub fn sample_completion_hours<R: Rng + ?Sized>(
    price_sequence: &[u32],
    acceptance: &dyn AcceptanceFn,
    rate: &PiecewiseConstantRate,
    rng: &mut R,
) -> Option<f64> {
    // Total arrivals W = Σ (1 + Geom(p(c_i))).
    let mut w: u64 = 0;
    for &c in price_sequence {
        let p = acceptance.p(c);
        if p <= 0.0 {
            return None;
        }
        w += Geometric::new(p).sample(rng) + 1;
    }
    // Λ(T) | W ~ Gamma(W, 1); for the large W here a normal approximation
    // is exact to within a fraction of a percent.
    let g = if w > 500 {
        Normal::new(w as f64, (w as f64).sqrt())
            .sample(rng)
            .max(1.0)
    } else {
        let mut acc = 0.0;
        for _ in 0..w {
            let mut u: f64 = rng.gen();
            while u <= f64::MIN_POSITIVE {
                u = rng.gen();
            }
            acc -= u.ln();
        }
        acc
    };
    rate.inverse_integral(g, 24.0 * 365.0)
}

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let scenario = PaperScenario::new(cfg.seed);
    run_with_scenario(&scenario, cfg)
}

pub fn run_with_scenario(scenario: &PaperScenario, cfg: ExpConfig) -> Vec<Report> {
    let problem = BudgetProblem::new(
        scenario.n_tasks,
        2500.0 * scenario.n_tasks as f64 / 200.0, // paper B scaled with N
        ActionSet::from_grid(scenario.grid, &scenario.acceptance),
        scenario.trained_rate.mean_rate(0.0, 7.0 * 24.0),
    );
    let sol = match solve_budget_hull(&problem) {
        Ok(s) => s,
        Err(e) => {
            let mut rep = Report::new("fig11", "Fig. 11 (failed)", &["error"]);
            rep.row(vec![e.to_string()]);
            return vec![rep];
        }
    };

    let trials = if cfg.fast { 300 } else { 2000 };
    let mut rng = stream_rng(cfg.seed, 11);
    let seq = sol.strategy.price_sequence();
    let mut summary = Summary::new();
    let mut times = Vec::with_capacity(trials);
    for _ in 0..trials {
        if let Some(t) =
            sample_completion_hours(&seq, &scenario.acceptance, &scenario.trained_rate, &mut rng)
        {
            summary.push(t);
            times.push(t);
        }
    }

    let lo = (summary.min() - 1.0).floor().max(0.0);
    let hi = (summary.max() + 1.0).ceil();
    let mut hist = Histogram::new(lo, hi, 16);
    for &t in &times {
        hist.push(t);
    }

    let mut rep = Report::new(
        "fig11",
        "Fig. 11: completion-time distribution under the budget strategy",
        &["hours_bin_center", "count"],
    );
    rep.note(format!(
        "strategy: {:?}; E[T] predicted {:.1} h",
        sol.strategy.counts(),
        sol.expected_hours
    ));
    rep.note(format!(
        "simulated mean {:.1} h, min {:.1}, max {:.1} (paper: mean 23.2, range ~18-30)",
        summary.mean(),
        summary.min(),
        summary.max()
    ));
    for (center, count) in hist.bins() {
        rep.row(vec![Report::fmt(center), count.to_string()]);
    }
    vec![rep]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_time_matches_prediction() {
        // Full paper-scale scenario: the sampler is cheap (no DP), so run
        // it directly and check the simulated mean against E[W]/λ̄.
        let scenario = PaperScenario::new(83);
        let reports = run_with_scenario(&scenario, ExpConfig::fast());
        let rep = &reports[0];
        let predicted: f64 = rep.notes[0]
            .split("predicted")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let simulated: f64 = rep.notes[1]
            .split("mean")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .trim_end_matches(',')
            .parse()
            .unwrap();
        assert!(
            (simulated - predicted).abs() / predicted < 0.15,
            "simulated {simulated} vs predicted {predicted}"
        );
        // Paper ballpark: ~1 day for 200 tasks at B/N = 12.5¢.
        assert!(
            (10.0..45.0).contains(&simulated),
            "mean completion {simulated}h outside plausible band"
        );
    }

    #[test]
    fn histogram_has_spread() {
        let scenario = PaperScenario::new(84);
        let reports = run_with_scenario(&scenario, ExpConfig::fast());
        let nonzero = reports[0]
            .rows
            .iter()
            .filter(|r| r[1].parse::<u64>().unwrap() > 0)
            .count();
        assert!(
            nonzero >= 4,
            "completion time should be spread over several bins (got {nonzero})"
        );
    }
}
