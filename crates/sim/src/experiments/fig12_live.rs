//! Fig. 12: the live Mechanical Turk experiment (Section 5.4), reproduced
//! against the event-driven marketplace simulator.
//!
//! (a) fixed grouping sizes 10–50: HIT completion curves;
//! (b) the same trials as % of total work completed;
//! (c) dynamic repricing: grouping size re-chosen hourly by a deadline MDP
//!     whose action set (per-task price ↔ group size) uses acceptance
//!     rates *estimated from the fixed trials*, exactly as in the paper.
//!
//! Paper headlines: group 10 completes >2× faster than 20 at hour 6; the
//! dynamic strategy finishes in ≈6 h instead of 14 and costs ≈$3.2 vs $5
//! for fixed-20 (≈36% cheaper).

use super::ExpConfig;
use crate::report::Report;
use ft_core::{
    calibrate_penalty, ActionSet, CalibrateOptions, DeadlinePolicy, DeadlineProblem, PenaltyModel,
    PriceAction, PriceController,
};
use ft_market::sim::{run_live_sim, FixedGroup, GroupController, LiveOutcome, LiveSimConfig};
use ft_market::{ArrivalRate, PiecewiseConstantRate};
use ft_stats::rng::stream_rng;

/// Group sizes available in the live experiment.
pub const GROUP_SIZES: [u32; 5] = [10, 20, 30, 40, 50];

/// Work-unit used by the dynamic controller's MDP (tasks per unit).
const UNIT: u32 = 50;

/// The arrival profile used by all live trials: the marketplace's daytime
/// window (8am–10pm) from the trained weekly profile, scaled to the live
/// marketplace's throughput.
pub fn live_arrival_rate(scale: f64) -> PiecewiseConstantRate {
    // A mild diurnal hump over 14 hours, ~6000/hour on average.
    let rates: Vec<f64> = (0..14)
        .map(|h| {
            scale * 6000.0 * (1.0 + 0.25 * ((h as f64 - 6.0) / 14.0 * std::f64::consts::PI).cos())
        })
        .collect();
    PiecewiseConstantRate::new(1.0, rates, false)
}

fn rate_bound(rate: &PiecewiseConstantRate) -> f64 {
    rate.rates().iter().cloned().fold(0.0, f64::max) * 1.001
}

/// Estimate the per-arrival *unit completion rate* of a fixed-group trial:
/// units completed per worker arrival within the trial's active window.
pub fn estimate_unit_rate(outcome: &LiveOutcome, horizon: f64) -> f64 {
    let window = outcome.finish_time_hours.unwrap_or(horizon).min(horizon);
    if window <= 0.0 || outcome.arrivals == 0 {
        return 0.0;
    }
    let active_arrivals = outcome.arrivals as f64 * window / horizon;
    let units = outcome.tasks_completed_by(window) as f64 / UNIT as f64;
    units / active_arrivals
}

/// A grouping-size controller driven by a deadline MDP over work units.
pub struct PolicyGroupController {
    policy: DeadlinePolicy,
    /// Map from the MDP's action reward (cents per unit) to group size.
    reward_to_group: Vec<(f64, u32)>,
    horizon_hours: f64,
}

impl PolicyGroupController {
    pub fn group_for_reward(&self, reward: f64) -> u32 {
        self.reward_to_group
            .iter()
            .find(|&&(r, _)| (r - reward).abs() < 1e-9)
            .map(|&(_, g)| g)
            .expect("policy returned an unknown reward")
    }
}

impl GroupController for PolicyGroupController {
    fn group_size(&mut self, t_hours: f64, tasks_remaining: u32) -> u32 {
        let nt = self.policy.n_intervals();
        let t_idx = ((t_hours / self.horizon_hours) * nt as f64).floor() as usize;
        let units = tasks_remaining.div_ceil(UNIT);
        let reward = self.policy.price(units, t_idx.min(nt - 1));
        self.group_for_reward(reward)
    }
}

/// Build the dynamic controller from per-group estimated unit rates.
pub fn build_controller(
    unit_rates: &[(u32, f64)],
    arrival: &PiecewiseConstantRate,
    config: &LiveSimConfig,
) -> ft_core::Result<PolicyGroupController> {
    let hit_price = config.hit_price_cents as f64;
    let actions: Vec<PriceAction> = unit_rates
        .iter()
        .map(|&(g, p)| PriceAction {
            // Cost of one unit of work at group size g: (UNIT/g) HITs.
            reward: UNIT as f64 * hit_price / g as f64,
            accept: p.clamp(0.0, 1.0),
        })
        .collect();
    let actions = ActionSet::from_unsorted_pruned(actions);
    let n_units = config.total_tasks.div_ceil(UNIT);
    let nt = config.horizon_hours.round() as usize; // hourly decisions
    let problem = DeadlineProblem::new(
        n_units,
        arrival.interval_means(config.horizon_hours, nt),
        actions.clone(),
        PenaltyModel::Linear { per_task: 1000.0 },
    );
    let cal = calibrate_penalty(
        &problem,
        0.02,
        CalibrateOptions {
            truncation_eps: 1e-8,
            max_iters: 20,
            ..Default::default()
        },
    )?;
    // Reward → group map from the *original* (unpruned) listing.
    let reward_to_group = unit_rates
        .iter()
        .map(|&(g, _)| (UNIT as f64 * hit_price / g as f64, g))
        .collect();
    Ok(PolicyGroupController {
        policy: cal.policy,
        reward_to_group,
        horizon_hours: config.horizon_hours,
    })
}

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    run_scaled(cfg, 1.0, 5000)
}

/// Run with a marketplace scale factor and batch size (tests shrink both).
pub fn run_scaled(cfg: ExpConfig, scale: f64, total_tasks: u32) -> Vec<Report> {
    let config = LiveSimConfig {
        total_tasks,
        ..Default::default()
    };
    let arrival = live_arrival_rate(scale);
    let bound = rate_bound(&arrival);

    // (a)+(b): fixed grouping trials.
    let mut fixed_hits = Report::new(
        "fig12a",
        "Fig. 12(a): HITs completed over time, fixed grouping",
        &["hour", "g10", "g20", "g30", "g40", "g50"],
    );
    fixed_hits.note("paper: g10 more than 2x g20 and 4x g30+ at hour 6");
    let mut fixed_work = Report::new(
        "fig12b",
        "Fig. 12(b): % of work completed over time, fixed grouping",
        &["hour", "g10", "g20", "g30", "g40", "g50"],
    );
    fixed_work.note("paper: g50 overtakes g30/g40 on work completed (longer sessions)");

    let mut outcomes = Vec::new();
    for (i, &g) in GROUP_SIZES.iter().enumerate() {
        let mut rng = stream_rng(cfg.seed, 120 + i as u64);
        let out = run_live_sim(&config, &arrival, bound, &mut FixedGroup(g), &mut rng);
        outcomes.push((g, out));
    }
    let hours: Vec<f64> = (1..=config.horizon_hours as u32).map(f64::from).collect();
    for &h in &hours {
        let mut hit_row = vec![Report::fmt(h)];
        let mut work_row = vec![Report::fmt(h)];
        for (_, out) in &outcomes {
            hit_row.push(out.hits_completed_by(h).to_string());
            work_row.push(Report::fmt(
                out.work_fraction_by(h, config.total_tasks) * 100.0,
            ));
        }
        fixed_hits.row(hit_row);
        fixed_work.row(work_row);
    }

    // Estimate per-group unit rates from the fixed trials (the paper's
    // Section 5.4.2 calibration step).
    let unit_rates: Vec<(u32, f64)> = outcomes
        .iter()
        .map(|(g, out)| (*g, estimate_unit_rate(out, config.horizon_hours)))
        .collect();

    // (c): dynamic trials.
    let mut dynamic = Report::new(
        "fig12c",
        "Fig. 12(c): % of work completed over time, dynamic grouping",
        &["hour", "trial1", "trial2", "trial3", "trial4", "trial5"],
    );
    dynamic.note("paper: all trials finish by ~6h (deadline 14h)");
    let mut costs = Report::new(
        "fig12c-cost",
        "Fig. 12(c) costs: dynamic vs fixed grouping",
        &["trial", "cost_dollars", "finish_hours"],
    );
    let fixed20_cost = config.total_tasks as f64 / 20.0 * config.hit_price_cents as f64 / 100.0;
    costs.note(format!(
        "fixed g=20 cost = ${fixed20_cost:.2}; paper: dynamic ≈ $3.2 vs $5.0"
    ));

    let n_trials = if cfg.fast { 2 } else { 5 };
    let mut dyn_outcomes = Vec::new();
    match build_controller(&unit_rates, &arrival, &config) {
        Ok(controller) => {
            let mut controller = controller;
            for trial in 0..n_trials {
                let mut rng = stream_rng(cfg.seed, 200 + trial as u64);
                let out = run_live_sim(&config, &arrival, bound, &mut controller, &mut rng);
                costs.row(vec![
                    (trial + 1).to_string(),
                    format!("{:.2}", out.cost_cents as f64 / 100.0),
                    out.finish_time_hours
                        .map_or("unfinished".into(), Report::fmt),
                ]);
                dyn_outcomes.push(out);
            }
            for &h in &hours {
                let mut row = vec![Report::fmt(h)];
                for i in 0..5 {
                    row.push(if i < dyn_outcomes.len() {
                        Report::fmt(dyn_outcomes[i].work_fraction_by(h, config.total_tasks) * 100.0)
                    } else {
                        "-".into()
                    });
                }
                dynamic.row(row);
            }
        }
        Err(e) => {
            dynamic.note(format!("controller build failed: {e}"));
        }
    }

    let mut rates = Report::new(
        "fig12-rates",
        "Estimated unit completion rates per arrival (calibration input)",
        &["group_size", "per_task_cents", "unit_rate"],
    );
    for &(g, r) in &unit_rates {
        rates.row(vec![
            g.to_string(),
            Report::fmt(config.hit_price_cents as f64 / g as f64),
            Report::fmt(r),
        ]);
    }

    vec![fixed_hits, fixed_work, dynamic, costs, rates]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports() -> Vec<Report> {
        // Tests shrink the batch 10× and the marketplace 5× — the extra
        // headroom keeps the dynamic controller comfortably feasible so the
        // assertions test shape, not knife-edge capacity.
        run_scaled(ExpConfig::fast(), 0.2, 500)
    }

    #[test]
    fn group10_fastest_at_hour_six() {
        let reps = reports();
        let fixed_work = &reps[1];
        let h6 = fixed_work
            .rows
            .iter()
            .find(|r| r[0].parse::<f64>().unwrap() == 6.0)
            .expect("hour 6 row");
        let g10: f64 = h6[1].parse().unwrap();
        let g30: f64 = h6[3].parse().unwrap();
        assert!(g10 > g30, "g10 ({g10}%) should lead g30 ({g30}%) at hour 6");
    }

    #[test]
    fn dynamic_finishes_and_costs_less_than_fixed20() {
        let reps = reports();
        let costs = &reps[3];
        assert!(
            !costs.rows.is_empty(),
            "no dynamic trials ran: {:?}",
            reps[2].notes
        );
        // Fixed-20 cost for the 500-task batch: 500/20 × $0.02 = $0.50.
        let fixed20 = 0.50;
        for row in &costs.rows {
            let cost: f64 = row[1].parse().unwrap();
            assert!(
                cost < fixed20 * 1.15,
                "dynamic cost ${cost} should not exceed fixed-20 ${fixed20} meaningfully"
            );
            assert!(row[2] != "unfinished", "dynamic trial failed to finish");
        }
    }

    #[test]
    fn unit_rates_estimated_for_all_groups() {
        let reps = reports();
        let rates = &reps[4];
        assert_eq!(rates.rows.len(), 5);
        for row in &rates.rows {
            let r: f64 = row[2].parse().unwrap();
            assert!(r > 0.0, "zero unit rate for group {}", row[0]);
        }
    }

    #[test]
    fn work_fractions_monotone_in_time() {
        let reps = reports();
        for rep_idx in [1usize, 2] {
            let rep = &reps[rep_idx];
            for col in 1..rep.columns.len() {
                let mut prev = -1.0f64;
                for row in &rep.rows {
                    if let Ok(v) = row[col].parse::<f64>() {
                        assert!(v >= prev - 1e-9, "{}: column {col} not monotone", rep.id);
                        prev = v;
                    }
                }
            }
        }
    }
}
