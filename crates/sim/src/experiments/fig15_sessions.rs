//! Fig. 15: average number of HITs completed per worker under different
//! price settings (Section 5.4.3).
//!
//! Paper finding: at low per-task prices workers leave after 1–2 HITs; at
//! higher prices they keep working — a behavior the NHPP model does not
//! capture, flagged by the paper as a modeling opportunity.

use super::fig12_live::{live_arrival_rate, GROUP_SIZES};
use super::ExpConfig;
use crate::report::Report;
use ft_market::sim::{run_live_sim, FixedGroup, LiveSimConfig};
use ft_stats::rng::stream_rng;

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    run_scaled(
        cfg,
        if cfg.fast { 0.1 } else { 1.0 },
        if cfg.fast { 2000 } else { 20000 },
    )
}

pub fn run_scaled(cfg: ExpConfig, scale: f64, total_tasks: u32) -> Vec<Report> {
    // Oversized batch so sessions are not cut short by depletion.
    let config = LiveSimConfig {
        total_tasks,
        ..Default::default()
    };
    let arrival = live_arrival_rate(scale);
    let bound = arrival.rates().iter().cloned().fold(0.0, f64::max) * 1.001;
    let session_model = config.session;

    let mut rep = Report::new(
        "fig15",
        "Fig. 15: average HITs completed per worker vs per-task price",
        &[
            "group_size",
            "per_task_cents",
            "mean_hits_per_worker",
            "model_expectation",
        ],
    );
    rep.note("paper: low price → workers leave after 1-2 HITs; high price → they stay");
    for (i, &g) in GROUP_SIZES.iter().enumerate() {
        let mut rng = stream_rng(cfg.seed, 150 + i as u64);
        let out = run_live_sim(&config, &arrival, bound, &mut FixedGroup(g), &mut rng);
        let per_task = config.hit_price_cents as f64 / g as f64;
        rep.row(vec![
            g.to_string(),
            Report::fmt(per_task),
            Report::fmt(out.mean_hits_per_session(g)),
            Report::fmt(session_model.expected_hits(per_task)),
        ]);
    }
    vec![rep]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_decrease_with_group_size() {
        // Larger groups → lower per-task price → shorter sessions.
        let reps = run_scaled(ExpConfig::fast(), 0.5, 8000);
        let rows = &reps[0].rows;
        let first: f64 = rows[0][2].parse().unwrap();
        let last: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(
            first > last,
            "g10 sessions ({first}) should exceed g50 sessions ({last})"
        );
    }

    #[test]
    fn observed_matches_model() {
        let reps = run_scaled(ExpConfig::fast(), 0.5, 8000);
        for row in &reps[0].rows {
            let observed: f64 = row[2].parse().unwrap();
            let model: f64 = row[3].parse().unwrap();
            // Depletion shortens sessions slightly and small groups have
            // few sessions; allow 30% relative slack.
            assert!(
                (observed - model).abs() / model < 0.30,
                "group {}: observed {observed} vs model {model}",
                row[0]
            );
        }
    }
}
