//! One module per paper table/figure. Each experiment takes an
//! [`ExpConfig`] and returns [`crate::report::Report`]s whose rows mirror
//! the series the paper plots.
//!
//! See DESIGN.md's per-experiment index for the mapping
//! (id → paper artifact → modules → bench target).

pub mod ext_adaptive;
pub mod fig01_trace;
pub mod fig05_acceptance;
pub mod fig06_tab02_snapshots;
pub mod fig07a_effectiveness;
pub mod fig07b_trends;
pub mod fig08_params;
pub mod fig08d_granularity;
pub mod fig09_robustness;
pub mod fig10_arrival;
pub mod fig11_budget;
pub mod fig12_live;
pub mod fig15_sessions;
pub mod tab01_truncation;
pub mod tab34_accuracy;

use crate::report::Report;

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Reduced sweeps / trial counts for quick runs and CI.
    pub fast: bool,
    /// Root seed; every experiment derives decorrelated streams from it.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            fast: false,
            seed: 20140827, // the paper's arXiv date
        }
    }
}

impl ExpConfig {
    pub fn fast() -> Self {
        Self {
            fast: true,
            ..Default::default()
        }
    }
}

/// All experiment ids in paper order.
pub const ALL_IDS: &[&str] = &[
    "fig1", "tab1", "fig5", "fig6", "fig7a", "fig7b", "fig8abc", "fig8d", "fig9", "fig10", "fig11",
    "fig12", "tab34", "fig15", "adaptive",
];

/// Run an experiment by id.
pub fn run_by_id(id: &str, cfg: ExpConfig) -> Option<Vec<Report>> {
    let reports = match id {
        "fig1" => fig01_trace::run(cfg),
        "tab1" => tab01_truncation::run(cfg),
        "fig5" => fig05_acceptance::run(cfg),
        "fig6" | "tab2" => fig06_tab02_snapshots::run(cfg),
        "fig7a" => fig07a_effectiveness::run(cfg),
        "fig7b" => fig07b_trends::run(cfg),
        "fig8abc" => fig08_params::run(cfg),
        "fig8d" => fig08d_granularity::run(cfg),
        "fig9" => fig09_robustness::run(cfg),
        "fig10" => fig10_arrival::run(cfg),
        "fig11" => fig11_budget::run(cfg),
        "fig12" => fig12_live::run(cfg),
        "tab34" | "tab3" | "tab4" | "fig13" | "fig14" => tab34_accuracy::run(cfg),
        "fig15" => fig15_sessions::run(cfg),
        "adaptive" | "ext-adaptive" => ext_adaptive::run(cfg),
        _ => return None,
    };
    Some(reports)
}
