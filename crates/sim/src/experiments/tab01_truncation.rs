//! Table 1: Poisson truncation points `s₀` for ε = 1e−9 and
//! λ ∈ {10, 20, 50} — plus a wider sweep to show the scaling.

use super::ExpConfig;
use crate::report::Report;
use ft_stats::Poisson;

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    let mut table = Report::new(
        "tab1",
        "Table 1: truncation point s0 with Pr[Pois(λ) ≥ s0] ≤ ε",
        &["eps", "lambda", "s0", "paper_s0"],
    );
    table.note("paper values: (1e-9, 10, 35), (1e-9, 20, 53), (1e-9, 50, 99)");
    for &(eps, lambda, paper) in &[(1e-9, 10.0, 35u64), (1e-9, 20.0, 53), (1e-9, 50.0, 99)] {
        let s0 = Poisson::new(lambda).truncation_point(eps);
        table.row(vec![
            format!("{eps:.0e}"),
            Report::fmt(lambda),
            s0.to_string(),
            paper.to_string(),
        ]);
    }

    let mut sweep = Report::new(
        "tab1-sweep",
        "Table 1 (extended): s0 across ε and λ",
        &["eps", "lambda", "s0"],
    );
    let epss: &[f64] = if cfg.fast {
        &[1e-6, 1e-9]
    } else {
        &[1e-3, 1e-6, 1e-9, 1e-12]
    };
    for &eps in epss {
        for &lambda in &[1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 2000.0] {
            let s0 = Poisson::new(lambda).truncation_point(eps);
            sweep.row(vec![
                format!("{eps:.0e}"),
                Report::fmt(lambda),
                s0.to_string(),
            ]);
        }
    }
    vec![table, sweep]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_values_exactly() {
        let reports = run(ExpConfig::default());
        for row in &reports[0].rows {
            assert_eq!(row[2], row[3], "s0 mismatch vs paper: {row:?}");
        }
    }

    #[test]
    fn sweep_is_monotone_in_lambda() {
        let reports = run(ExpConfig::default());
        let rows = &reports[1].rows;
        for pair in rows.windows(2) {
            if pair[0][0] == pair[1][0] {
                let a: u64 = pair[0][2].parse().unwrap();
                let b: u64 = pair[1][2].parse().unwrap();
                assert!(b >= a, "s0 must grow with λ");
            }
        }
    }
}
