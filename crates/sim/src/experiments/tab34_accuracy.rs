//! Tables 3/4 and Figs. 13/14: answer quality across price settings
//! (Section 5.4.3).
//!
//! Paper finding (a null result): accuracy sits near 90% for every group
//! size and the differences are not statistically significant — pricing
//! mainly affects *whether* workers take the task, not how well they do it.

use super::fig12_live::{build_controller, live_arrival_rate, GROUP_SIZES};
use super::ExpConfig;
use crate::report::Report;
use ft_market::sim::{run_live_sim, FixedGroup, LiveOutcome, LiveSimConfig};
use ft_stats::{descriptive::welch_t, rng::stream_rng, Summary};

fn cdf_rows(accs: &[f64]) -> Vec<(f64, f64)> {
    let thresholds: Vec<f64> = (0..=20).map(|i| 0.5 + i as f64 * 0.025).collect();
    thresholds
        .into_iter()
        .map(|th| {
            let frac = accs.iter().filter(|&&a| a <= th).count() as f64 / accs.len().max(1) as f64;
            (th, frac)
        })
        .collect()
}

pub fn run(cfg: ExpConfig) -> Vec<Report> {
    run_scaled(
        cfg,
        if cfg.fast { 0.1 } else { 1.0 },
        if cfg.fast { 500 } else { 5000 },
    )
}

pub fn run_scaled(cfg: ExpConfig, scale: f64, total_tasks: u32) -> Vec<Report> {
    let config = LiveSimConfig {
        total_tasks,
        ..Default::default()
    };
    let arrival = live_arrival_rate(scale);
    let bound = arrival.rates().iter().cloned().fold(0.0, f64::max) * 1.001;

    // Fixed trials (Table 3 / Fig. 13).
    let mut outcomes: Vec<(u32, LiveOutcome)> = Vec::new();
    for (i, &g) in GROUP_SIZES.iter().enumerate() {
        let mut rng = stream_rng(cfg.seed, 340 + i as u64);
        let out = run_live_sim(&config, &arrival, bound, &mut FixedGroup(g), &mut rng);
        outcomes.push((g, out));
    }

    let mut tab3 = Report::new(
        "tab3",
        "Table 3: average accuracy per group size (fixed pricing)",
        &["group_size", "mean_accuracy_pct", "hits", "welch_t_vs_g10"],
    );
    tab3.note("paper: 92.7 / 90.4 / 91.6 / 90.0 / 89.5 — differences not significant");
    let summaries: Vec<(u32, Summary)> = outcomes
        .iter()
        .map(|(g, out)| (*g, Summary::from_slice(&out.hit_accuracies(Some(*g)))))
        .collect();
    let base = &summaries[0].1;
    for (g, s) in &summaries {
        let t = if s.count() > 1 && base.count() > 1 && *g != 10 {
            Report::fmt(welch_t(base, s))
        } else {
            "-".into()
        };
        tab3.row(vec![
            g.to_string(),
            Report::fmt(s.mean() * 100.0),
            s.count().to_string(),
            t,
        ]);
    }

    let mut fig13 = Report::new(
        "fig13",
        "Fig. 13: cumulative accuracy distribution per group size (fixed)",
        &["accuracy_threshold", "g10", "g20", "g30", "g40", "g50"],
    );
    let all_cdfs: Vec<Vec<(f64, f64)>> = outcomes
        .iter()
        .map(|(g, out)| cdf_rows(&out.hit_accuracies(Some(*g))))
        .collect();
    for i in 0..all_cdfs[0].len() {
        let mut row = vec![Report::fmt(all_cdfs[0][i].0)];
        for cdf in &all_cdfs {
            row.push(Report::fmt(cdf[i].1));
        }
        fig13.row(row);
    }

    // Dynamic trials (Table 4 / Fig. 14).
    let unit_rates: Vec<(u32, f64)> = outcomes
        .iter()
        .map(|(g, out)| {
            (
                *g,
                super::fig12_live::estimate_unit_rate(out, config.horizon_hours),
            )
        })
        .collect();
    // The paper tabulates the two group sizes its controller used most
    // (20 and 50 in their runs); ours is identified from the trial logs.
    let mut trial_outcomes = Vec::new();
    let mut usage: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    if let Ok(mut controller) = build_controller(&unit_rates, &arrival, &config) {
        let n_trials = if cfg.fast { 2 } else { 5 };
        for trial in 0..n_trials {
            let mut rng = stream_rng(cfg.seed, 400 + trial as u64);
            let out = run_live_sim(&config, &arrival, bound, &mut controller, &mut rng);
            for c in &out.completions {
                *usage.entry(c.group_size).or_insert(0) += 1;
            }
            trial_outcomes.push(out);
        }
    }
    let mut by_usage: Vec<(u32, usize)> = usage.into_iter().collect();
    by_usage.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let top: Vec<u32> = by_usage.iter().take(2).map(|&(g, _)| g).collect();
    let (ga, gb) = match top.as_slice() {
        [a, b] => (*a, *b),
        // Only one size was ever used: pair it with the paper's other
        // headline size so the table keeps two informative columns.
        [a] => (*a, if *a == 20 { 50 } else { 20 }),
        _ => (20, 50),
    };

    let mut tab4 = Report::new(
        "tab4",
        "Table 4: accuracy in the dynamic pricing trials, by group size used",
        &[
            "trial",
            &format!("acc_g{ga}_pct"),
            &format!("acc_g{gb}_pct"),
            "overall_pct",
        ],
    );
    tab4.note("paper: overall ≈ 88-95% per trial; per-size differences insignificant");
    let mut fig14 = Report::new(
        "fig14",
        "Fig. 14: cumulative accuracy distribution in dynamic trials",
        &["accuracy_threshold", &format!("g{ga}"), &format!("g{gb}")],
    );
    if trial_outcomes.is_empty() {
        tab4.note("controller build failed; dynamic accuracy unavailable");
    }
    let mut acc_a_all = Vec::new();
    let mut acc_b_all = Vec::new();
    for (trial, out) in trial_outcomes.iter().enumerate() {
        let aa = out.hit_accuracies(Some(ga));
        let ab = out.hit_accuracies(Some(gb));
        let all = out.hit_accuracies(None);
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64 * 100.0
            }
        };
        tab4.row(vec![
            (trial + 1).to_string(),
            Report::fmt(mean(&aa)),
            Report::fmt(mean(&ab)),
            Report::fmt(mean(&all)),
        ]);
        acc_a_all.extend(aa);
        acc_b_all.extend(ab);
    }
    if !acc_a_all.is_empty() && !acc_b_all.is_empty() {
        let ca = cdf_rows(&acc_a_all);
        let cb = cdf_rows(&acc_b_all);
        for i in 0..ca.len() {
            fig14.row(vec![
                Report::fmt(ca[i].0),
                Report::fmt(ca[i].1),
                Report::fmt(cb[i].1),
            ]);
        }
    }

    vec![tab3, fig13, tab4, fig14]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports() -> Vec<Report> {
        run_scaled(ExpConfig::fast(), 0.1, 500)
    }

    #[test]
    fn accuracy_near_ninety_for_all_groups() {
        let reps = reports();
        for row in &reps[0].rows {
            let acc: f64 = row[1].parse().unwrap();
            assert!(
                (84.0..97.0).contains(&acc),
                "group {} accuracy {acc}% outside the paper band",
                row[0]
            );
        }
    }

    #[test]
    fn no_large_significance() {
        // |t| < 5 for all pairwise comparisons vs group 10 (the paper finds
        // no significant differences; with simulated workers a mild fatigue
        // slope exists but stays small).
        let reps = reports();
        for row in &reps[0].rows[1..] {
            if let Ok(t) = row[3].parse::<f64>() {
                assert!(t.abs() < 6.0, "implausibly large t statistic {t}");
            }
        }
    }

    #[test]
    fn cdfs_are_monotone() {
        let reps = reports();
        for rep_idx in [1usize, 3] {
            let rep = &reps[rep_idx];
            for col in 1..rep.columns.len() {
                let mut prev = -1.0;
                for row in &rep.rows {
                    if let Ok(v) = row[col].parse::<f64>() {
                        assert!(v >= prev - 1e-12, "{} col {col} not monotone", rep.id);
                        prev = v;
                    }
                }
            }
        }
    }

    #[test]
    fn dynamic_overall_accuracy_reported() {
        let reps = reports();
        let tab4 = &reps[2];
        assert!(
            !tab4.rows.is_empty(),
            "no dynamic accuracy rows: {:?}",
            tab4.notes
        );
        for row in &tab4.rows {
            let overall: f64 = row[3].parse().unwrap();
            assert!((84.0..97.0).contains(&overall));
        }
    }
}
