//! # ft-sim
//!
//! Experiment harness for the `finish-them` workspace: Monte-Carlo policy
//! execution, the paper's default scenario, and one experiment module per
//! table/figure of Gao & Parameswaran (VLDB 2014).
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p ft-sim --release --bin experiments            # all
//! cargo run -p ft-sim --release --bin experiments -- fig7a   # one id
//! cargo run -p ft-sim --release --bin experiments -- --fast  # CI-sized
//! ```

pub mod experiments;
pub mod mc;
pub mod outcome;
pub mod report;
pub mod scenario;

pub use experiments::{run_by_id, ExpConfig, ALL_IDS};
pub use mc::{run_mc, simulate_once, McConfig, TrialResult, TrueModel};
pub use outcome::Aggregate;
pub use report::Report;
pub use scenario::{compare_dynamic_vs_fixed, CostComparison, PaperScenario};
