//! Monte-Carlo execution of pricing controllers against a ground-truth
//! marketplace model — the counterpart to `ft-core`'s exact forward
//! evaluation, and the only way to get full outcome *distributions*
//! (completion-time histograms, remaining-task tails).
//!
//! The true model may differ from what the controller was trained on
//! (Sections 5.2.4/5.2.5).

use ft_core::policy::PriceController;
use ft_stats::{rng::stream_rng, Poisson};
use serde::{Deserialize, Serialize};

/// Ground-truth marketplace dynamics for simulation.
pub struct TrueModel<'a, F: Fn(f64) -> f64 + Sync> {
    /// Expected worker arrivals per interval.
    pub interval_arrivals: &'a [f64],
    /// True acceptance probability at a posted reward.
    pub accept: F,
    /// Wall-clock hours covered by the intervals (for finish times).
    pub horizon_hours: f64,
}

/// One simulated campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Total rewards paid.
    pub paid: f64,
    /// Tasks completed by the deadline.
    pub completed: u32,
    /// Tasks remaining at the deadline.
    pub remaining: u32,
    /// Hour at which the batch finished (end of the finishing interval),
    /// if it finished.
    pub finish_hours: Option<f64>,
}

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    pub trials: usize,
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            seed: 0xF15E,
            threads: 0,
        }
    }
}

/// Simulate one campaign: per interval, draw completions
/// `X ~ Pois(λ_t · p(price))`, capped by the remaining count.
pub fn simulate_once<C, F, R>(
    controller: &C,
    model: &TrueModel<'_, F>,
    n_tasks: u32,
    rng: &mut R,
) -> TrialResult
where
    C: PriceController + ?Sized,
    F: Fn(f64) -> f64 + Sync,
    R: rand::Rng + ?Sized,
{
    let nt = model.interval_arrivals.len();
    let dt = model.horizon_hours / nt as f64;
    let mut remaining = n_tasks;
    let mut paid = 0.0f64;
    let mut finish = None;
    for (t, &lam) in model.interval_arrivals.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        let price = controller.price(remaining, t);
        let p = (model.accept)(price).clamp(0.0, 1.0);
        let x = Poisson::new(lam * p).sample(rng) as u32;
        let done = x.min(remaining);
        paid += done as f64 * price;
        remaining -= done;
        if remaining == 0 {
            finish = Some((t + 1) as f64 * dt);
        }
    }
    TrialResult {
        paid,
        completed: n_tasks - remaining,
        remaining,
        finish_hours: finish,
    }
}

/// Run many trials, parallelized over threads with decorrelated per-trial
/// RNG streams; results are deterministic for a given seed and independent
/// of the thread count.
pub fn run_mc<C, F>(
    controller: &C,
    model: &TrueModel<'_, F>,
    n_tasks: u32,
    cfg: McConfig,
) -> Vec<TrialResult>
where
    C: PriceController + Sync + ?Sized,
    F: Fn(f64) -> f64 + Sync,
{
    assert!(cfg.trials > 0, "need at least one trial");
    let mut results = vec![
        TrialResult {
            paid: 0.0,
            completed: 0,
            remaining: 0,
            finish_hours: None
        };
        cfg.trials
    ];
    // Per-trial RNG streams are derived from (seed, trial index), so the
    // chunk decomposition ft-exec picks cannot affect the results — the
    // same persistent worker pool also drives the solver kernel and
    // pricing service, so repeated MC sweeps reuse parked workers
    // instead of spawning a fresh set per call.
    ft_exec::par_chunks_mut(&mut results, 16, cfg.threads, |start, slot| {
        for (j, out) in slot.iter_mut().enumerate() {
            let mut rng = stream_rng(cfg.seed, (start + j) as u64);
            *out = simulate_once(controller, model, n_tasks, &mut rng);
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::policy::FixedPrice;

    fn model(arrivals: &[f64]) -> TrueModel<'_, impl Fn(f64) -> f64 + Sync> {
        TrueModel {
            interval_arrivals: arrivals,
            accept: |c: f64| (c / 100.0).min(1.0),
            horizon_hours: arrivals.len() as f64,
        }
    }

    #[test]
    fn conservation_and_bounds() {
        let arrivals = vec![50.0; 8];
        let m = model(&arrivals);
        let out = run_mc(
            &FixedPrice(10.0),
            &m,
            40,
            McConfig {
                trials: 200,
                seed: 1,
                threads: 2,
            },
        );
        assert_eq!(out.len(), 200);
        for r in &out {
            assert_eq!(r.completed + r.remaining, 40);
            assert!((r.paid - r.completed as f64 * 10.0).abs() < 1e-9);
            if let Some(f) = r.finish_hours {
                assert!(f > 0.0 && f <= 8.0);
            } else {
                assert!(r.remaining > 0);
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let arrivals = vec![30.0; 6];
        let m = model(&arrivals);
        let a = run_mc(
            &FixedPrice(20.0),
            &m,
            25,
            McConfig {
                trials: 64,
                seed: 7,
                threads: 1,
            },
        );
        let b = run_mc(
            &FixedPrice(20.0),
            &m,
            25,
            McConfig {
                trials: 64,
                seed: 7,
                threads: 4,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn mc_matches_exact_expectation() {
        // Expected completions per interval: λp = 50·0.1 = 5; 8 intervals,
        // 100 tasks → E[completed] ≈ 40 (never hits the cap).
        let arrivals = vec![50.0; 8];
        let m = model(&arrivals);
        let out = run_mc(
            &FixedPrice(10.0),
            &m,
            100,
            McConfig {
                trials: 4000,
                seed: 3,
                threads: 0,
            },
        );
        let mean = out.iter().map(|r| r.completed as f64).sum::<f64>() / out.len() as f64;
        assert!((mean - 40.0).abs() < 0.6, "mean completed {mean}");
    }

    #[test]
    fn higher_price_finishes_more() {
        let arrivals = vec![40.0; 5];
        let m = model(&arrivals);
        let cheap = run_mc(
            &FixedPrice(5.0),
            &m,
            60,
            McConfig {
                trials: 500,
                seed: 4,
                threads: 0,
            },
        );
        let rich = run_mc(
            &FixedPrice(50.0),
            &m,
            60,
            McConfig {
                trials: 500,
                seed: 4,
                threads: 0,
            },
        );
        let mean =
            |v: &[TrialResult]| v.iter().map(|r| r.completed as f64).sum::<f64>() / v.len() as f64;
        assert!(mean(&rich) > mean(&cheap) + 10.0);
    }
}
