//! Aggregation of Monte-Carlo trial results.

use crate::mc::TrialResult;
use ft_stats::{Histogram, Summary};
use serde::{Deserialize, Serialize};

/// Aggregate statistics over a set of trials.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Aggregate {
    pub trials: usize,
    pub mean_paid: f64,
    pub mean_completed: f64,
    pub mean_remaining: f64,
    /// Fraction of trials that finished everything.
    pub finish_rate: f64,
    /// Average reward per completed task (total paid / total completed).
    pub avg_reward: f64,
    /// Mean finish hour among finishing trials (NaN if none finished).
    pub mean_finish_hours: f64,
    /// 95% CI half-width on mean_paid.
    pub paid_ci95: f64,
}

impl Aggregate {
    pub fn from_trials(trials: &[TrialResult]) -> Self {
        assert!(!trials.is_empty(), "no trials to aggregate");
        let mut paid = Summary::new();
        let mut completed = Summary::new();
        let mut remaining = Summary::new();
        let mut finish = Summary::new();
        let mut finished = 0usize;
        let mut total_paid = 0.0;
        let mut total_completed = 0.0;
        for t in trials {
            paid.push(t.paid);
            completed.push(t.completed as f64);
            remaining.push(t.remaining as f64);
            total_paid += t.paid;
            total_completed += t.completed as f64;
            if let Some(f) = t.finish_hours {
                finish.push(f);
                finished += 1;
            }
        }
        Self {
            trials: trials.len(),
            mean_paid: paid.mean(),
            mean_completed: completed.mean(),
            mean_remaining: remaining.mean(),
            finish_rate: finished as f64 / trials.len() as f64,
            avg_reward: if total_completed > 0.0 {
                total_paid / total_completed
            } else {
                f64::NAN
            },
            mean_finish_hours: finish.mean(),
            paid_ci95: paid.ci95_half_width(),
        }
    }
}

/// Histogram of finish times over `[min_h, max_h]` with `bins` buckets;
/// returns the histogram plus the count of unfinished trials.
pub fn finish_time_histogram(
    trials: &[TrialResult],
    min_h: f64,
    max_h: f64,
    bins: usize,
) -> (Histogram, usize) {
    let mut h = Histogram::new(min_h, max_h, bins);
    let mut unfinished = 0usize;
    for t in trials {
        match t.finish_hours {
            Some(f) => h.push(f),
            None => unfinished += 1,
        }
    }
    (h, unfinished)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(paid: f64, completed: u32, remaining: u32, finish: Option<f64>) -> TrialResult {
        TrialResult {
            paid,
            completed,
            remaining,
            finish_hours: finish,
        }
    }

    #[test]
    fn aggregate_arithmetic() {
        let trials = vec![
            trial(100.0, 10, 0, Some(5.0)),
            trial(200.0, 10, 0, Some(7.0)),
            trial(50.0, 5, 5, None),
        ];
        let a = Aggregate::from_trials(&trials);
        assert_eq!(a.trials, 3);
        assert!((a.mean_paid - 350.0 / 3.0).abs() < 1e-12);
        assert!((a.finish_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.avg_reward - 350.0 / 25.0).abs() < 1e-12);
        assert!((a.mean_finish_hours - 6.0).abs() < 1e-12);
        assert!((a.mean_remaining - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_unfinished() {
        let trials = vec![
            trial(0.0, 1, 0, Some(2.0)),
            trial(0.0, 1, 0, Some(3.0)),
            trial(0.0, 0, 1, None),
        ];
        let (h, unfinished) = finish_time_histogram(&trials, 0.0, 10.0, 5);
        assert_eq!(unfinished, 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn avg_reward_nan_with_zero_completions() {
        let a = Aggregate::from_trials(&[trial(0.0, 0, 10, None)]);
        assert!(a.avg_reward.is_nan());
    }
}
