//! Experiment reports: named tables that render as aligned ASCII and CSV.
//!
//! Every experiment in this crate returns one or more [`Report`]s whose
//! rows mirror the series of the corresponding paper table/figure.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A rectangular, column-named result table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment identifier (e.g. "fig7a").
    pub id: String,
    /// Human title (e.g. "Fig. 7(a): avg reward vs expected remaining").
    pub title: String,
    /// Free-form notes: parameters, paper-expected values, caveats.
    pub notes: Vec<String>,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Append a row; must match the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in report {}",
            self.id
        );
        self.rows.push(cells);
        self
    }

    /// Format a float with sensible digits for tables.
    pub fn fmt(v: f64) -> String {
        if !v.is_finite() {
            return format!("{v}");
        }
        if v == 0.0 {
            return "0".into();
        }
        let a = v.abs();
        if a >= 1000.0 {
            format!("{v:.0}")
        } else if a >= 10.0 {
            format!("{v:.2}")
        } else if a >= 0.01 {
            format!("{v:.4}")
        } else {
            format!("{v:.3e}")
        }
    }

    /// Render as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== [{}] {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   # {n}");
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "  {}", "-".repeat(rule));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish quoting).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_contains_everything() {
        let mut r = Report::new("t1", "Test table", &["x", "value"]);
        r.note("a note");
        r.row(vec!["1".into(), "2.5".into()]);
        r.row(vec!["10".into(), "3.25".into()]);
        let s = r.to_ascii();
        assert!(s.contains("[t1]"));
        assert!(s.contains("a note"));
        assert!(s.contains("2.5"));
        assert!(s.contains("3.25"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut r = Report::new("t2", "Bad", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut r = Report::new("t3", "CSV", &["name", "v"]);
        r.row(vec!["a,b".into(), "1".into()]);
        r.row(vec!["q\"q".into(), "2".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(Report::fmt(0.0), "0");
        assert_eq!(Report::fmt(12345.6), "12346");
        assert_eq!(Report::fmt(12.345), "12.35");
        assert_eq!(Report::fmt(0.1234), "0.1234");
        assert!(Report::fmt(0.0001234).contains('e'));
    }
}
