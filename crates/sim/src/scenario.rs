//! The paper's default experimental scenario (Section 5.2) and shared
//! helpers for the per-figure experiments.
//!
//! Defaults: `N = 200` tasks, `T = 24` hours, 20-minute intervals
//! (`N_T = 72`), worker arrivals from a synthetic mturk-tracker trace
//! (≈6000/hour marketplace-wide), and the Eq. 13 acceptance function
//! (`s = 15, b = −0.39, M = 2000`).

use ft_core::{
    calibrate_penalty, solve_fixed_price, ActionSet, CalibrateOptions, CalibratedPolicy,
    DeadlineProblem, FixedPriceSolution, PenaltyModel,
};
use ft_market::tracker::weekly_average_rate;
use ft_market::{
    ArrivalRate, LogitAcceptance, PiecewiseConstantRate, PriceGrid, TrackerConfig, TrackerTrace,
};
use ft_stats::seeded_rng;

/// The Section 5.2 default scenario.
#[derive(Debug, Clone)]
pub struct PaperScenario {
    pub n_tasks: u32,
    pub horizon_hours: f64,
    /// Interval length in minutes (20 by default; Fig. 8(d) varies this).
    pub interval_minutes: f64,
    pub acceptance: LogitAcceptance,
    pub grid: PriceGrid,
    pub trace: TrackerTrace,
    /// Trained arrival model: the weekly-average periodic profile.
    pub trained_rate: PiecewiseConstantRate,
}

impl PaperScenario {
    /// Build the default scenario from a fresh synthetic trace.
    pub fn new(seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let trace = TrackerTrace::generate(TrackerConfig::january_2014(), &mut rng);
        let trained_rate = weekly_average_rate(&trace);
        Self {
            n_tasks: 200,
            horizon_hours: 24.0,
            interval_minutes: 20.0,
            acceptance: LogitAcceptance::paper_eq13(),
            grid: PriceGrid::new(0, 40),
            trace,
            trained_rate,
        }
    }

    /// Number of decision intervals `N_T`.
    pub fn n_intervals(&self) -> usize {
        (self.horizon_hours * 60.0 / self.interval_minutes).round() as usize
    }

    /// Trained per-interval arrival masses λ_t.
    pub fn interval_arrivals(&self) -> Vec<f64> {
        self.trained_rate
            .interval_means(self.horizon_hours, self.n_intervals())
    }

    /// The deadline problem under the trained model.
    pub fn deadline_problem(&self, penalty_per_task: f64) -> DeadlineProblem {
        DeadlineProblem::new(
            self.n_tasks,
            self.interval_arrivals(),
            ActionSet::from_grid(self.grid, &self.acceptance),
            PenaltyModel::Linear {
                per_task: penalty_per_task,
            },
        )
    }

    /// Dynamic policy calibrated so that `E[remaining] ≤ bound`
    /// (Theorem 2).
    pub fn solve_dynamic(&self, remaining_bound: f64) -> ft_core::Result<CalibratedPolicy> {
        calibrate_penalty(
            &self.deadline_problem(100.0),
            remaining_bound,
            CalibrateOptions::default(),
        )
    }

    /// Fixed-price baseline at a completion confidence (Faridani).
    pub fn solve_fixed(&self, confidence: f64) -> ft_core::Result<FixedPriceSolution> {
        let actions = ActionSet::from_grid(self.grid, &self.acceptance);
        let total: f64 = self.interval_arrivals().iter().sum();
        solve_fixed_price(&actions, total, self.n_tasks, confidence)
    }

    /// The theoretical average-reward lower bound `c₀` (Section 5.2.1).
    pub fn c0(&self) -> Option<f64> {
        let p = self.deadline_problem(0.0);
        p.reward_lower_bound_index()
            .map(|i| p.actions.get(i).reward)
    }
}

/// The head-to-head cost comparison used by Figs. 7(b) and 8(a–c): both
/// strategies tuned to finish everything with ≥ `confidence`, dynamic cost
/// taken as expected paid, fixed cost as `N · c_fixed`.
#[derive(Debug, Clone, Copy)]
pub struct CostComparison {
    pub dynamic_cost: f64,
    pub fixed_cost: f64,
    pub dynamic_avg_reward: f64,
    pub fixed_reward: f64,
    /// Percentage cost reduction `r = (c_f − c_d)/c_f`.
    pub reduction: f64,
}

/// Compare calibrated-dynamic vs fixed pricing on a problem.
///
/// `confidence` is mapped to the Theorem 2 bound `E[remaining] ≤
/// 1 − confidence` (Markov: `Pr[any remaining] ≤ E[remaining]`).
pub fn compare_dynamic_vs_fixed(
    problem: &DeadlineProblem,
    confidence: f64,
    opts: CalibrateOptions,
) -> ft_core::Result<CostComparison> {
    let bound = 1.0 - confidence;
    let cal = calibrate_penalty(problem, bound, opts)?;
    let fixed = solve_fixed_price(
        &problem.actions,
        problem.total_arrivals(),
        problem.n_tasks,
        confidence,
    )?;
    let dynamic_cost = cal.outcome.expected_paid;
    let fixed_cost = fixed.total_cost;
    Ok(CostComparison {
        dynamic_cost,
        fixed_cost,
        dynamic_avg_reward: cal.outcome.average_reward(),
        fixed_reward: fixed.reward,
        reduction: (fixed_cost - dynamic_cost) / fixed_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_dimensions() {
        let s = PaperScenario::new(1);
        assert_eq!(s.n_intervals(), 72);
        let arr = s.interval_arrivals();
        assert_eq!(arr.len(), 72);
        // ≈ 6000/hour × 1/3 hour per interval, diurnal swing aside.
        let mean = arr.iter().sum::<f64>() / 72.0;
        assert!(
            (1000.0..3500.0).contains(&mean),
            "mean interval mass {mean}"
        );
    }

    #[test]
    fn c0_matches_paper() {
        // Section 5.2.1: c₀ ≈ 12.
        let s = PaperScenario::new(2);
        let c0 = s.c0().unwrap();
        assert!((10.0..=14.0).contains(&c0), "c0 = {c0}");
    }

    #[test]
    fn fixed_baseline_close_to_paper() {
        let s = PaperScenario::new(3);
        let fixed = s.solve_fixed(0.999).unwrap();
        assert!(
            (14.0..=18.0).contains(&fixed.reward),
            "fixed reward {}",
            fixed.reward
        );
    }

    #[test]
    #[ignore = "slow: full calibration; run with --ignored"]
    fn dynamic_beats_fixed_by_double_digits() {
        let s = PaperScenario::new(4);
        let cmp = compare_dynamic_vs_fixed(
            &s.deadline_problem(100.0),
            0.999,
            CalibrateOptions::default(),
        )
        .unwrap();
        assert!(
            cmp.reduction > 0.10,
            "expected ≥10% cost reduction, got {:.3}",
            cmp.reduction
        );
        assert!(cmp.dynamic_avg_reward < cmp.fixed_reward);
    }
}
