//! Lower convex hull in 2D — the geometric core of the fixed-budget LP
//! solution (Theorem 7 / Algorithm 3): the two optimal prices must be
//! vertices of the lower hull of the points `(c, 1/p(c))`.

/// A 2D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "points must be finite");
        Self { x, y }
    }
}

/// Cross product of `(b − a) × (c − a)`; positive when `c` lies to the left
/// of the directed line `a → b` (counter-clockwise turn).
pub fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Lower convex hull of a set of points, returned as indices into the input
/// in increasing `x` order.
///
/// Collinear interior points are dropped. Duplicate `x` values keep only the
/// lowest `y` (the cheaper expected-arrival count at that price).
pub fn lower_hull_indices(points: &[Point]) -> Vec<usize> {
    assert!(!points.is_empty(), "hull of empty point set");
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| {
        points[i]
            .x
            .partial_cmp(&points[j].x)
            .unwrap()
            .then(points[i].y.partial_cmp(&points[j].y).unwrap())
    });
    // Deduplicate equal x keeping the lowest y (first after the sort).
    order.dedup_by(|&mut b, &mut a| (points[a].x - points[b].x).abs() < 1e-12);

    let mut hull: Vec<usize> = Vec::with_capacity(order.len());
    for &i in &order {
        while hull.len() >= 2 {
            let a = points[hull[hull.len() - 2]];
            let b = points[hull[hull.len() - 1]];
            // Keep strictly convex turns only: pop when b is above or on the
            // segment a→points[i].
            if cross(a, b, points[i]) <= 1e-12 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    hull
}

/// Lower convex hull returned as points.
pub fn lower_hull(points: &[Point]) -> Vec<Point> {
    lower_hull_indices(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

/// Check whether `p` is on or above the lower hull polyline (used to verify
/// Theorem 7's second property in tests).
pub fn above_or_on_hull(hull: &[Point], p: Point) -> bool {
    assert!(!hull.is_empty(), "empty hull");
    if hull.len() == 1 {
        return p.y >= hull[0].y - 1e-9;
    }
    // Find the segment whose x-range contains p.x.
    for w in hull.windows(2) {
        let (a, b) = (w[0], w[1]);
        if p.x >= a.x - 1e-12 && p.x <= b.x + 1e-12 {
            let t = if (b.x - a.x).abs() < 1e-12 {
                0.0
            } else {
                (p.x - a.x) / (b.x - a.x)
            };
            let y_line = a.y + t * (b.y - a.y);
            return p.y >= y_line - 1e-9;
        }
    }
    // Outside the hull's x-range: trivially fine.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn hull_of_v_shape() {
        let p = pts(&[(0.0, 2.0), (1.0, 0.0), (2.0, 2.0)]);
        let h = lower_hull_indices(&p);
        assert_eq!(h, vec![0, 1, 2]);
    }

    #[test]
    fn hull_drops_interior_points() {
        // (1, 5) is way above the segment (0,0)–(2,0).
        let p = pts(&[(0.0, 0.0), (1.0, 5.0), (2.0, 0.0)]);
        let h = lower_hull_indices(&p);
        assert_eq!(h, vec![0, 2]);
    }

    #[test]
    fn hull_drops_collinear_points() {
        let p = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let h = lower_hull_indices(&p);
        assert_eq!(h, vec![0, 3]);
    }

    #[test]
    fn hull_handles_unsorted_input() {
        let p = pts(&[(2.0, 2.0), (0.0, 2.0), (1.0, 0.0)]);
        let h = lower_hull(&p);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].x, 0.0);
        assert_eq!(h[1].x, 1.0);
        assert_eq!(h[2].x, 2.0);
    }

    #[test]
    fn duplicate_x_keeps_lowest_y() {
        let p = pts(&[(1.0, 3.0), (1.0, 1.0), (0.0, 0.0), (2.0, 0.0)]);
        let h = lower_hull(&p);
        // (1,1) still above segment (0,0)-(2,0), so hull is the two ends.
        assert_eq!(h.len(), 2);
        assert_eq!((h[0].x, h[0].y), (0.0, 0.0));
        assert_eq!((h[1].x, h[1].y), (2.0, 0.0));
    }

    #[test]
    fn all_points_above_hull() {
        // Convexity witness on a reciprocal-like curve with noise bumps.
        let p: Vec<Point> = (1..=50)
            .map(|i| {
                let x = i as f64;
                let bump = if i % 7 == 0 { 0.5 } else { 0.0 };
                Point::new(x, 100.0 / x + bump)
            })
            .collect();
        let h = lower_hull(&p);
        for &q in &p {
            assert!(above_or_on_hull(&h, q), "point below hull: {q:?}");
        }
    }

    #[test]
    fn single_point_hull() {
        let p = pts(&[(3.0, 4.0)]);
        assert_eq!(lower_hull_indices(&p), vec![0]);
        assert!(above_or_on_hull(&lower_hull(&p), Point::new(3.0, 4.0)));
    }
}
