//! Descriptive statistics: streaming summaries, quantiles, histograms and
//! empirical CDFs used by the experiment harness to report distributions
//! (e.g., Fig. 11 completion times, Figs. 13/14 accuracy CDFs).

use serde::{Deserialize, Serialize};

/// Streaming univariate summary (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "Summary only accepts finite values, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample (n−1) variance.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate 95% confidence half-width for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }
}

/// Quantile of a sample by linear interpolation (type-7, the numpy default).
/// Sorts a copy; for repeated queries use [`sorted_quantile`] on pre-sorted
/// data instead.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    sorted_quantile(&sorted, q)
}

/// Quantile of pre-sorted data.
pub fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fixed-width histogram over `[min, max]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(max > min && bins > 0, "invalid histogram bounds/bins");
        Self {
            min,
            max,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        if x < self.min {
            self.below += 1;
        } else if x >= self.max {
            if x == self.max {
                *self.counts.last_mut().expect("bins > 0") += 1;
            } else {
                self.above += 1;
            }
        } else {
            let n_bins = self.counts.len();
            let width = (self.max - self.min) / n_bins as f64;
            let idx = (((x - self.min) / width) as usize).min(n_bins - 1);
            self.counts[idx] += 1;
        }
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Outliers below/above the range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// `(bin_center, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let width = (self.max - self.min) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.min + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

/// Empirical CDF evaluated at each distinct sample point:
/// returns sorted `(x, F(x))` pairs.
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    assert!(!xs.is_empty(), "ecdf of empty slice");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, &x) in sorted.iter().enumerate() {
        let f = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == x => last.1 = f,
            _ => out.push((x, f)),
        }
    }
    out
}

/// Welch's two-sample t statistic (used to check "differences are not
/// statistically significant" claims from Tables 3/4).
pub fn welch_t(a: &Summary, b: &Summary) -> f64 {
    let va = a.variance() / a.count() as f64;
    let vb = b.variance() / b.count() as f64;
    (a.mean() - b.mean()) / (va + vb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_close(s.mean(), 2.5, 1e-12);
        assert_close(s.variance(), 5.0 / 3.0, 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_merge_equals_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let bulk = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        assert_close(a.mean(), bulk.mean(), 1e-10);
        assert_close(a.variance(), bulk.variance(), 1e-10);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_close(quantile(&xs, 0.0), 1.0, 1e-12);
        assert_close(quantile(&xs, 1.0), 4.0, 1e-12);
        assert_close(quantile(&xs, 0.5), 2.5, 1e-12);
        assert_close(quantile(&xs, 0.25), 1.75, 1e-12);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, 10.0, -1.0, 12.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.counts()[0], 2); // 0.5, 1.5
        assert_eq!(h.counts()[1], 1); // 2.5
        assert_eq!(h.counts()[4], 2); // 9.9 and max-inclusive 10.0
    }

    #[test]
    fn ecdf_steps() {
        let e = ecdf(&[1.0, 1.0, 2.0, 3.0]);
        assert_eq!(e.len(), 3);
        assert_close(e[0].1, 0.5, 1e-12);
        assert_close(e[1].1, 0.75, 1e-12);
        assert_close(e[2].1, 1.0, 1e-12);
    }

    #[test]
    fn welch_t_zero_for_identical() {
        let a = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let b = Summary::from_slice(&[1.0, 2.0, 3.0]);
        assert_close(welch_t(&a, &b), 0.0, 1e-12);
    }
}
