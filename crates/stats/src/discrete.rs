//! Binomial, geometric, and categorical distributions.
//!
//! - Binomial: the thinning law — of `X` arrived workers, `Bin(X, p)` pick
//!   up our task (Section 2.1).
//! - Geometric: worker arrivals between consecutive completions under a
//!   semi-static strategy (Theorem 5).
//! - Categorical: worker task choice among HIT groups.

use crate::special::ln_factorial;
use rand::Rng;

/// Binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Binomial p must be in [0,1], got {p}"
        );
        Self { n, p }
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn p(&self) -> f64 {
        self.p
    }

    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln = ln_factorial(self.n) - ln_factorial(k) - ln_factorial(self.n - k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln();
        ln.exp()
    }

    /// `Pr[X ≤ k]` by direct summation (fine for the moderate `n` used here).
    pub fn cdf(&self, k: u64) -> f64 {
        (0..=k.min(self.n))
            .map(|i| self.pmf(i))
            .sum::<f64>()
            .min(1.0)
    }

    /// Draw one sample.
    ///
    /// Uses direct Bernoulli summation for small `n`, and inversion by
    /// sequential search from the mode for large `n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= 64 {
            let mut k = 0;
            for _ in 0..self.n {
                if rng.gen::<f64>() < self.p {
                    k += 1;
                }
            }
            return k;
        }
        // Inversion from the mode (exact, O(σ) expected).
        let u: f64 = rng.gen();
        let mode = ((self.n as f64 + 1.0) * self.p).floor().min(self.n as f64) as u64;
        let p_mode = self.pmf(mode);
        let f_mode = self.cdf(mode);
        let q = self.p / (1.0 - self.p);
        if u <= f_mode {
            if u > f_mode - p_mode {
                return mode;
            }
            let mut k = mode;
            let mut f = f_mode - p_mode;
            let mut pm = p_mode;
            while k > 0 {
                // pmf(k-1) = pmf(k) * k / ((n-k+1) q)
                pm *= k as f64 / ((self.n - k + 1) as f64 * q);
                k -= 1;
                if u > f - pm {
                    return k;
                }
                f -= pm;
            }
            0
        } else {
            let mut k = mode;
            let mut f = f_mode;
            let mut pm = p_mode;
            while k < self.n {
                // pmf(k+1) = pmf(k) * (n-k)/(k+1) * q
                pm *= (self.n - k) as f64 / (k + 1) as f64 * q;
                k += 1;
                f += pm;
                if u <= f {
                    return k;
                }
            }
            self.n
        }
    }
}

/// Geometric distribution counting the number of failures before the first
/// success: `Pr[X = k] = (1 − p)^k · p`, matching the paper's `w_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "Geometric p must be in (0,1], got {p}");
        Self { p }
    }

    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean number of failures, `(1 − p)/p`.
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    pub fn pmf(&self, k: u64) -> f64 {
        (1.0 - self.p).powi(k as i32) * self.p
    }

    pub fn cdf(&self, k: u64) -> f64 {
        1.0 - (1.0 - self.p).powi(k as i32 + 1)
    }

    /// Draw one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let mut u: f64 = rng.gen();
        while u <= f64::MIN_POSITIVE {
            u = rng.gen();
        }
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

/// Categorical distribution over `0..weights.len()` with non-negative
/// weights (not necessarily normalized).
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
    total: f64,
}

impl Categorical {
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "Categorical weights must be finite and non-negative, got {w}"
            );
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "Categorical weights must not all be zero");
        Self { cumulative, total }
    }

    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of category `i`.
    pub fn prob(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }

    /// Draw one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen::<f64>() * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let b = Binomial::new(30, 0.37);
        let sum: f64 = (0..=30).map(|k| b.pmf(k)).sum();
        assert_close(sum, 1.0, 1e-12);
    }

    #[test]
    fn binomial_edge_probabilities() {
        let b0 = Binomial::new(10, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        let b1 = Binomial::new(10, 1.0);
        assert_eq!(b1.pmf(10), 1.0);
        let mut rng = seeded_rng(1);
        assert_eq!(b0.sample(&mut rng), 0);
        assert_eq!(b1.sample(&mut rng), 10);
    }

    #[test]
    fn binomial_sample_moments_small_and_large_n() {
        let mut rng = seeded_rng(9);
        for &(n, p) in &[(40u64, 0.3), (5000u64, 0.002), (1000u64, 0.7)] {
            let b = Binomial::new(n, p);
            let trials = 50_000;
            let mean = (0..trials).map(|_| b.sample(&mut rng)).sum::<u64>() as f64 / trials as f64;
            let tol = 4.0 * (b.variance() / trials as f64).sqrt() + 1e-9;
            assert_close(mean, b.mean(), tol);
        }
    }

    #[test]
    fn geometric_mean_and_pmf() {
        let g = Geometric::new(0.25);
        assert_close(g.mean(), 3.0, 1e-12);
        let sum: f64 = (0..200).map(|k| g.pmf(k)).sum();
        assert_close(sum, 1.0, 1e-10);
        let mut rng = seeded_rng(2);
        let trials = 100_000;
        let mean = (0..trials).map(|_| g.sample(&mut rng)).sum::<u64>() as f64 / trials as f64;
        assert_close(mean, 3.0, 0.06);
    }

    #[test]
    fn geometric_expected_arrivals_theorem5() {
        // E[w_i] + 1 = 1/p: the per-task expected worker-arrival count used
        // in Theorem 5.
        for &p in &[0.01, 0.1, 0.5, 1.0] {
            let g = Geometric::new(p);
            assert_close(g.mean() + 1.0, 1.0 / p, 1e-12);
        }
    }

    #[test]
    fn categorical_matches_weights() {
        let c = Categorical::new(&[1.0, 3.0, 6.0]);
        assert_close(c.prob(0), 0.1, 1e-12);
        assert_close(c.prob(1), 0.3, 1e-12);
        assert_close(c.prob(2), 0.6, 1e-12);
        let mut rng = seeded_rng(8);
        let mut counts = [0u64; 3];
        let trials = 100_000;
        for _ in 0..trials {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_close(counts[2] as f64 / trials as f64, 0.6, 0.01);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn categorical_rejects_zero_total() {
        Categorical::new(&[0.0, 0.0]);
    }
}
