//! Gumbel (type-I extreme value) distribution: the noise term of the
//! conditional logit model (Section 2.2). Independent Gumbel utility noise
//! is exactly what makes choice probabilities multinomial-logit.

use rand::Rng;

/// Gumbel distribution with location `mu` and scale `beta > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    mu: f64,
    beta: f64,
}

impl Gumbel {
    /// Create a Gumbel distribution. Panics on non-finite or `beta <= 0`.
    pub fn new(mu: f64, beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta.is_finite() && mu.is_finite(),
            "Gumbel requires finite mu and beta > 0, got mu={mu}, beta={beta}"
        );
        Self { mu, beta }
    }

    /// Standard Gumbel (location 0, scale 1).
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Mean = mu + beta * γ (Euler–Mascheroni).
    pub fn mean(&self) -> f64 {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        self.mu + self.beta * EULER_GAMMA
    }

    /// Variance = π²β²/6.
    pub fn variance(&self) -> f64 {
        std::f64::consts::PI.powi(2) * self.beta * self.beta / 6.0
    }

    /// CDF: `exp(−exp(−(x−μ)/β))`.
    pub fn cdf(&self, x: f64) -> f64 {
        (-((-(x - self.mu) / self.beta).exp())).exp()
    }

    /// PDF.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.beta;
        ((-z - (-z).exp()).exp()) / self.beta
    }

    /// Inverse CDF.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "Gumbel quantile needs p in (0,1)");
        self.mu - self.beta * (-(p.ln())).ln()
    }

    /// Draw one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Guard against u == 0 (ln(0) = −inf).
        let mut u: f64 = rng.gen();
        while u <= f64::MIN_POSITIVE {
            u = rng.gen();
        }
        self.mu - self.beta * (-(u.ln())).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gumbel::new(1.5, 0.8);
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.999] {
            assert_close(g.cdf(g.quantile(p)), p, 1e-12);
        }
    }

    #[test]
    fn sample_moments() {
        let g = Gumbel::standard();
        let mut rng = seeded_rng(11);
        let n = 300_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert_close(mean, g.mean(), 0.01);
        assert_close(var, g.variance(), 0.03);
    }

    #[test]
    fn logit_choice_identity() {
        // The defining property: for utilities u_i + Gumbel noise, the
        // probability item 0 maximizes equals softmax(u)_0. Empirical check.
        let utilities = [1.0f64, 0.0, -0.5, 0.3];
        let g = Gumbel::standard();
        let mut rng = seeded_rng(5);
        let trials = 200_000;
        let mut wins = 0u64;
        for _ in 0..trials {
            let noisy: Vec<f64> = utilities.iter().map(|&u| u + g.sample(&mut rng)).collect();
            let best = noisy
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if best == 0 {
                wins += 1;
            }
        }
        let z: f64 = utilities.iter().map(|u| u.exp()).sum();
        let softmax0 = utilities[0].exp() / z;
        assert_close(wins as f64 / trials as f64, softmax0, 0.01);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gumbel::new(0.0, 1.0);
        let (mut acc, h) = (0.0, 1e-3);
        let mut x = -6.0;
        while x < 15.0 {
            acc += g.pdf(x) * h;
            x += h;
        }
        assert_close(acc, 1.0, 1e-3);
    }
}
