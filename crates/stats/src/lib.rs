//! # ft-stats
//!
//! Statistical substrate for the `finish-them` workspace — the reproduction
//! of *"Finish Them!: Pricing Algorithms for Human Computation"*
//! (Gao & Parameswaran, VLDB 2014).
//!
//! Everything here is implemented from scratch on top of `rand`:
//!
//! - [`poisson`]: the completion-count law of the thinned NHPP model,
//!   including the tail [`poisson::Poisson::truncation_point`] used by the
//!   Section 3.2 DP speed-up (Table 1).
//! - [`discrete`]: binomial thinning, geometric inter-completion counts
//!   (Theorem 5), categorical choice.
//! - [`gumbel`]: the logit-noise distribution of the discrete choice model.
//! - [`normal`]: utility perception noise (Section 5.1.1).
//! - [`regression`]: OLS (Table 2) and IRLS logistic regression (Fig. 5).
//! - [`convex`]: lower convex hulls (Theorem 7 / Algorithm 3).
//! - [`descriptive`]: summaries, quantiles, histograms, empirical CDFs.
//! - [`special`]: log-gamma, erf, incomplete gamma.
//! - [`rng`]: deterministic seeding with decorrelated child streams.

pub mod convex;
pub mod descriptive;
pub mod discrete;
pub mod gumbel;
pub mod linalg;
pub mod normal;
pub mod poisson;
pub mod regression;
pub mod rng;
pub mod special;

pub use convex::{lower_hull, lower_hull_indices, Point};
pub use descriptive::{ecdf, quantile, Histogram, Summary};
pub use discrete::{Binomial, Categorical, Geometric};
pub use gumbel::Gumbel;
pub use normal::Normal;
pub use poisson::Poisson;
pub use regression::{Logistic, MultiOls, SimpleOls};
pub use rng::{seeded_rng, stream_rng};
