//! Minimal dense linear algebra: just enough to solve the normal equations
//! for least-squares regression (Table 2) and the IRLS steps of logistic
//! regression (Fig. 5).

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `self^T * self` (Gram matrix), the left side of normal equations.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = acc;
                g[(j, i)] = acc;
            }
        }
        g
    }

    /// `self^T * v`.
    pub fn t_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &vr) in self.data.chunks_exact(self.cols).zip(v) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x * vr;
            }
        }
        out
    }

    /// `self * v`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .zip(v)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Solve `self * x = b` by Gaussian elimination with partial pivoting.
    /// Returns `None` if the matrix is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in (col + 1)..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn identity_solve_is_input() {
        let m = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn gram_and_t_mul_vec() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = x.gram();
        assert_close(g[(0, 0)], 35.0, 1e-12);
        assert_close(g[(0, 1)], 44.0, 1e-12);
        assert_close(g[(1, 1)], 56.0, 1e-12);
        let v = x.t_mul_vec(&[1.0, 1.0, 1.0]);
        assert_close(v[0], 9.0, 1e-12);
        assert_close(v[1], 12.0, 1e-12);
    }

    #[test]
    fn random_solve_roundtrip() {
        // Construct a well-conditioned system and verify A * solve(A,b) = b.
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 5.0, 1.5],
            vec![0.5, 1.5, 6.0],
        ]);
        let b = [1.0, 2.0, 3.0];
        let x = a.solve(&b).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert_close(*u, *v, 1e-10);
        }
    }
}
