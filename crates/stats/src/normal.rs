//! Normal distribution, used by the utility-based choice simulation
//! (Section 5.1.1) and by approximate confidence intervals.

use crate::special::{erf, erfc};
use rand::Rng;

/// Normal distribution with mean `mu` and standard deviation `sigma > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a normal distribution. Panics if `sigma <= 0` or not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite() && mu.is_finite(),
            "Normal requires finite mu and sigma > 0, got mu={mu}, sigma={sigma}"
        );
        Self { mu, sigma }
    }

    /// The standard normal distribution.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    pub fn mean(&self) -> f64 {
        self.mu
    }

    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-(z * z) / 2.0).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Survival function `Pr[X > x]`.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Inverse CDF via Acklam's rational approximation refined with one
    /// Halley step (relative error below 1e-9).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "Normal quantile requires p in (0,1), got {p}"
        );
        self.mu + self.sigma * standard_normal_quantile(p)
    }

    /// Draw one sample using the Marsaglia polar method.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal_sample(rng)
    }
}

/// One standard-normal draw (Marsaglia polar method).
pub fn standard_normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// Standard-normal inverse CDF (Acklam's algorithm + Halley refinement).
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step against the accurate erf-based CDF.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// `Pr[Z ≤ z]` for standard normal `Z` (convenience wrapper).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn cdf_known_values() {
        let n = Normal::standard();
        assert_close(n.cdf(0.0), 0.5, 1e-12);
        assert_close(n.cdf(1.96), 0.975, 2e-4);
        assert_close(n.cdf(-1.96), 0.025, 2e-4);
        assert_close(n.cdf(3.0), 0.99865, 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(2.0, 3.0);
        for &p in &[1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let x = n.quantile(p);
            assert_close(n.cdf(x), p, 1e-6);
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = Normal::new(-1.0, 0.7);
        let (mut acc, h) = (0.0, 1e-3);
        let mut x = -8.0;
        while x < 6.0 {
            acc += n.pdf(x) * h;
            x += h;
        }
        assert_close(acc, 1.0, 1e-3);
    }

    #[test]
    fn sample_moments() {
        let n = Normal::new(5.0, 2.0);
        let mut rng = seeded_rng(3);
        let k = 200_000;
        let xs: Vec<f64> = (0..k).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / k as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert_close(mean, 5.0, 0.03);
        assert_close(var, 4.0, 0.1);
    }

    #[test]
    fn sf_complements_cdf() {
        let n = Normal::new(0.0, 1.0);
        for &x in &[-2.0, -0.5, 0.0, 1.3, 4.0] {
            assert_close(n.cdf(x) + n.sf(x), 1.0, 1e-12);
        }
    }
}
