//! Poisson distribution: the completion-count law of the thinned NHPP model
//! (Eq. 1 of the paper), plus the tail-truncation machinery of Section 3.2.

use crate::special::{gamma_p, gamma_q, ln_factorial};
use rand::Rng;

/// Poisson distribution with mean `lambda ≥ 0`.
///
/// `lambda == 0` is allowed and denotes the degenerate distribution at 0;
/// it arises naturally when a price of 0 yields acceptance probability 0 or
/// when an interval has no worker arrivals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution. Panics if `lambda` is negative or NaN.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "Poisson mean must be finite and non-negative, got {lambda}"
        );
        Self { lambda }
    }

    /// The mean (and variance) of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Natural log of `Pr[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    /// `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `Pr[X ≤ k]`, via the regularized upper incomplete gamma identity
    /// `Pr[Pois(λ) ≤ k] = Q(k + 1, λ)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return 1.0;
        }
        gamma_q(k as f64 + 1.0, self.lambda)
    }

    /// Survival `Pr[X ≥ k]` (note: inclusive, matching the paper's
    /// `Pr(Pois(·|λ) ≥ s)` notation).
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if self.lambda == 0.0 {
            return 0.0;
        }
        gamma_p(k as f64, self.lambda)
    }

    /// Smallest `k` with `Pr[X ≤ k] ≥ q`, for `q ∈ [0, 1)`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(
            (0.0..1.0).contains(&q),
            "quantile needs q in [0,1), got {q}"
        );
        if self.lambda == 0.0 {
            return 0;
        }
        // Bracket with a normal-approximation guess, then walk.
        let sigma = self.lambda.sqrt();
        let mut k = (self.lambda + 4.0 * sigma * (q - 0.5)).max(0.0) as u64;
        while self.cdf(k) < q {
            k += 1;
        }
        while k > 0 && self.cdf(k - 1) >= q {
            k -= 1;
        }
        k
    }

    /// The truncation point `s0` of Section 3.2: the smallest `s` such that
    /// `Pr[X ≥ s] ≤ eps`. All DP transition terms with `s ≥ s0` may be
    /// dropped with total probability mass at most `eps` (Theorem 1).
    pub fn truncation_point(&self, eps: f64) -> u64 {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        if self.lambda == 0.0 {
            return 1;
        }
        // Exponential bracketing above the mean, then binary search on the
        // monotone survival function.
        let mut lo = self.lambda.floor() as u64; // sf(lo) ~ 0.5 > eps for eps << 1
        if self.sf(lo) <= eps {
            lo = 0;
        }
        let mut hi = (self.lambda.ceil() as u64 + 2).max(4);
        while self.sf(hi) > eps {
            hi *= 2;
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.sf(mid) <= eps {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Draw one sample.
    ///
    /// Small means use Knuth's product-of-uniforms method; large means use a
    /// two-sided sequential search from the mode driven by a single uniform,
    /// which is exact and `O(√λ)` expected per draw.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_inversion_from_mode(rng)
        }
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    fn sample_inversion_from_mode<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let mode = self.lambda.floor() as u64;
        let p_mode = self.pmf(mode);
        // CDF up to and including the mode; then walk outward.
        let f_mode = self.cdf(mode);
        if u <= f_mode {
            // Walk downward from the mode.
            if u > f_mode - p_mode {
                return mode;
            }
            let mut k = mode;
            let mut f = f_mode - p_mode;
            let mut p = p_mode;
            while k > 0 {
                p *= k as f64 / self.lambda;
                k -= 1;
                if u > f - p {
                    return k;
                }
                f -= p;
            }
            0
        } else {
            // Walk upward from the mode.
            let mut k = mode;
            let mut f = f_mode;
            let mut p = p_mode;
            loop {
                k += 1;
                p *= self.lambda / k as f64;
                f += p;
                if u <= f || p < 1e-300 {
                    return k;
                }
            }
        }
    }

    /// Fill `out[s] = Pr[X = s]` for `s = 0..out.len()`, using the stable
    /// multiplicative recurrence. Returns the total mass written.
    ///
    /// This is the inner-loop primitive of the DP solvers: one pass per
    /// `(interval, price)` pair.
    pub fn pmf_prefix(&self, out: &mut [f64]) -> f64 {
        if out.is_empty() {
            return 0.0;
        }
        if self.lambda == 0.0 {
            out[0] = 1.0;
            for v in &mut out[1..] {
                *v = 0.0;
            }
            return 1.0;
        }
        let mut total = 0.0;
        // Start from ln pmf(0) to stay stable for large λ where pmf(0)
        // underflows: switch to log-space seeding at the first index.
        let mut p = (-self.lambda).exp();
        if p == 0.0 {
            // λ is huge; seed each value from log-space instead.
            for (s, v) in out.iter_mut().enumerate() {
                *v = self.pmf(s as u64);
                total += *v;
            }
            return total;
        }
        for (s, v) in out.iter_mut().enumerate() {
            if s > 0 {
                p *= self.lambda / s as f64;
            }
            *v = p;
            total += p;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.1, 1.0, 5.0, 20.0, 100.0] {
            let d = Poisson::new(lambda);
            let sum: f64 = (0..(lambda as u64 * 3 + 50)).map(|k| d.pmf(k)).sum();
            assert_close(sum, 1.0, 1e-10);
        }
    }

    #[test]
    fn degenerate_zero_lambda() {
        let d = Poisson::new(0.0);
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.pmf(3), 0.0);
        assert_eq!(d.cdf(0), 1.0);
        assert_eq!(d.sf(1), 0.0);
        assert_eq!(d.quantile(0.999), 0);
        let mut rng = seeded_rng(1);
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    fn cdf_matches_direct_sum() {
        let d = Poisson::new(7.3);
        let mut acc = 0.0;
        for k in 0..30 {
            acc += d.pmf(k);
            assert_close(d.cdf(k), acc, 1e-10);
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let d = Poisson::new(12.5);
        for k in 1..40u64 {
            assert_close(d.sf(k), 1.0 - d.cdf(k - 1), 1e-10);
        }
        assert_eq!(d.sf(0), 1.0);
    }

    #[test]
    fn paper_table1_truncation_points() {
        // Table 1 of the paper: eps = 1e-9 gives s0 = 35, 53, 99 for
        // λ = 10, 20, 50.
        let eps = 1e-9;
        assert_eq!(Poisson::new(10.0).truncation_point(eps), 35);
        assert_eq!(Poisson::new(20.0).truncation_point(eps), 53);
        assert_eq!(Poisson::new(50.0).truncation_point(eps), 99);
    }

    #[test]
    fn truncation_point_is_tight() {
        for &lambda in &[0.5, 3.0, 17.0, 250.0] {
            for &eps in &[1e-3, 1e-6, 1e-9] {
                let d = Poisson::new(lambda);
                let s0 = d.truncation_point(eps);
                assert!(d.sf(s0) <= eps, "sf({s0}) > eps for λ={lambda}");
                assert!(
                    s0 == 0 || d.sf(s0 - 1) > eps,
                    "s0 not minimal for λ={lambda}, eps={eps}"
                );
            }
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Poisson::new(9.0);
        for &q in &[0.01, 0.25, 0.5, 0.75, 0.99, 0.9999] {
            let k = d.quantile(q);
            assert!(d.cdf(k) >= q);
            assert!(k == 0 || d.cdf(k - 1) < q);
        }
    }

    #[test]
    fn sample_mean_and_variance_small_lambda() {
        let d = Poisson::new(4.2);
        let mut rng = seeded_rng(42);
        let n = 200_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert_close(mean, 4.2, 0.05);
        assert_close(var, 4.2, 0.15);
    }

    #[test]
    fn sample_mean_large_lambda() {
        let d = Poisson::new(1700.0);
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert_close(mean, 1700.0, 2.0);
    }

    #[test]
    fn pmf_prefix_matches_pmf() {
        for &lambda in &[0.0, 2.5, 60.0, 900.0] {
            let d = Poisson::new(lambda);
            let mut buf = vec![0.0; 64];
            let total = d.pmf_prefix(&mut buf);
            for (s, &v) in buf.iter().enumerate() {
                assert_close(v, d.pmf(s as u64), 1e-12);
            }
            assert_close(total, d.cdf(63), 1e-9);
        }
    }
}
