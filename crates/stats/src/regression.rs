//! Regression: ordinary least squares (Section 5.1.2 / Table 2) and
//! logistic regression via iteratively reweighted least squares
//! (the Fig. 5 fit and the β estimation suggested by Faridani et al.).

use crate::linalg::Matrix;

/// Simple linear regression `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleOls {
    pub slope: f64,
    pub intercept: f64,
    pub r_squared: f64,
}

impl SimpleOls {
    /// Fit by least squares. Panics if fewer than two points or if all `x`
    /// are identical.
    pub fn fit(x: &[f64], y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        assert!(x.len() >= 2, "need at least two points");
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
        let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        assert!(sxx > 0.0, "x values are all identical");
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let syy: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Self {
            slope,
            intercept,
            r_squared,
        }
    }

    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Multiple linear regression via the normal equations.
///
/// The design matrix is given as rows of features; an intercept column is
/// appended automatically, and its coefficient is the last entry of
/// [`MultiOls::coefficients`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiOls {
    pub coefficients: Vec<f64>,
    pub r_squared: f64,
}

impl MultiOls {
    pub fn fit(features: &[Vec<f64>], y: &[f64]) -> Option<Self> {
        assert_eq!(features.len(), y.len(), "rows and targets must match");
        assert!(!features.is_empty(), "need at least one observation");
        let k = features[0].len();
        let rows: Vec<Vec<f64>> = features
            .iter()
            .map(|f| {
                assert_eq!(f.len(), k, "ragged feature rows");
                let mut r = f.clone();
                r.push(1.0);
                r
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let gram = x.gram();
        let xty = x.t_mul_vec(y);
        let beta = gram.solve(&xty)?;
        // R².
        let my = y.iter().sum::<f64>() / y.len() as f64;
        let yhat = x.mul_vec(&beta);
        let ss_res: f64 = y.iter().zip(&yhat).map(|(a, b)| (a - b) * (a - b)).sum();
        let ss_tot: f64 = y.iter().map(|a| (a - my) * (a - my)).sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(Self {
            coefficients: beta,
            r_squared,
        })
    }

    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len() + 1,
            self.coefficients.len(),
            "feature count mismatch"
        );
        features
            .iter()
            .zip(&self.coefficients)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.coefficients[self.coefficients.len() - 1]
    }
}

/// Logistic regression fit by Newton–Raphson / IRLS.
///
/// Model: `Pr[y = 1 | x] = sigmoid(w · x + w0)`; the intercept is the last
/// coefficient. Supports fractional targets in `[0, 1]` (empirical
/// acceptance frequencies) with optional per-row weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Logistic {
    pub coefficients: Vec<f64>,
    pub iterations: usize,
    pub converged: bool,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Logistic {
    /// Fit with unit weights.
    pub fn fit(features: &[Vec<f64>], y: &[f64]) -> Option<Self> {
        Self::fit_weighted(features, y, None)
    }

    /// Fit with optional per-observation weights (e.g., counts behind each
    /// empirical frequency).
    pub fn fit_weighted(features: &[Vec<f64>], y: &[f64], weights: Option<&[f64]>) -> Option<Self> {
        assert_eq!(features.len(), y.len(), "rows and targets must match");
        assert!(!features.is_empty(), "need at least one observation");
        for &t in y {
            assert!((0.0..=1.0).contains(&t), "targets must be in [0,1]");
        }
        if let Some(w) = weights {
            assert_eq!(w.len(), y.len(), "weights must match observations");
        }
        let k = features[0].len();
        let rows: Vec<Vec<f64>> = features
            .iter()
            .map(|f| {
                assert_eq!(f.len(), k, "ragged feature rows");
                let mut r = f.clone();
                r.push(1.0);
                r
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let dim = k + 1;
        let mut beta = vec![0.0; dim];
        let max_iter = 100;
        let ridge = 1e-9; // tiny ridge keeps IRLS stable under separation
        let mut converged = false;
        let mut iterations = 0;
        for it in 0..max_iter {
            iterations = it + 1;
            let eta = x.mul_vec(&beta);
            let mu: Vec<f64> = eta.iter().map(|&z| sigmoid(z)).collect();
            // Gradient: X^T W (y − μ); Hessian: X^T diag(w μ(1−μ)) X.
            let mut grad = vec![0.0; dim];
            let mut hess = Matrix::zeros(dim, dim);
            for r in 0..rows.len() {
                let w = weights.map_or(1.0, |w| w[r]);
                let resid = w * (y[r] - mu[r]);
                let s = w * (mu[r] * (1.0 - mu[r])).max(1e-12);
                for i in 0..dim {
                    grad[i] += rows[r][i] * resid;
                    for j in i..dim {
                        hess[(i, j)] += s * rows[r][i] * rows[r][j];
                    }
                }
            }
            for i in 0..dim {
                for j in 0..i {
                    hess[(i, j)] = hess[(j, i)];
                }
                hess[(i, i)] += ridge;
            }
            let step = hess.solve(&grad)?;
            let mut max_step: f64 = 0.0;
            for i in 0..dim {
                beta[i] += step[i];
                max_step = max_step.max(step[i].abs());
            }
            if max_step < 1e-10 {
                converged = true;
                break;
            }
        }
        Some(Self {
            coefficients: beta,
            iterations,
            converged,
        })
    }

    /// Predicted probability for a feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len() + 1,
            self.coefficients.len(),
            "feature count mismatch"
        );
        let z: f64 = features
            .iter()
            .zip(&self.coefficients)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.coefficients[self.coefficients.len() - 1];
        sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use rand::Rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn simple_ols_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = SimpleOls::fit(&x, &y);
        assert_close(fit.slope, 2.0, 1e-12);
        assert_close(fit.intercept, 1.0, 1e-12);
        assert_close(fit.r_squared, 1.0, 1e-12);
    }

    #[test]
    fn simple_ols_noisy_line_recovers_parameters() {
        let mut rng = seeded_rng(13);
        let xs: Vec<f64> = (0..2000).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 748.0 * x + 3.66 + (rng.gen::<f64>() - 0.5) * 2.0)
            .collect();
        let fit = SimpleOls::fit(&xs, &ys);
        assert_close(fit.slope, 748.0, 0.5);
        assert_close(fit.intercept, 3.66, 3.0);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn simple_ols_rejects_constant_x() {
        SimpleOls::fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn multi_ols_exact_plane() {
        // y = 2a − 3b + 5
        let feats = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![-1.0, 2.0],
        ];
        let y: Vec<f64> = feats
            .iter()
            .map(|f| 2.0 * f[0] - 3.0 * f[1] + 5.0)
            .collect();
        let fit = MultiOls::fit(&feats, &y).unwrap();
        assert_close(fit.coefficients[0], 2.0, 1e-9);
        assert_close(fit.coefficients[1], -3.0, 1e-9);
        assert_close(fit.coefficients[2], 5.0, 1e-9);
        assert_close(fit.predict(&[1.0, 1.0]), 4.0, 1e-9);
    }

    #[test]
    fn logistic_recovers_known_coefficients() {
        // Generate y ~ Bernoulli(sigmoid(1.5 x − 0.5)) and recover.
        let mut rng = seeded_rng(17);
        let mut feats = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..20_000 {
            let x: f64 = rng.gen::<f64>() * 6.0 - 3.0;
            let p = sigmoid(1.5 * x - 0.5);
            feats.push(vec![x]);
            ys.push(if rng.gen::<f64>() < p { 1.0 } else { 0.0 });
        }
        let fit = Logistic::fit(&feats, &ys).unwrap();
        assert!(fit.converged);
        assert_close(fit.coefficients[0], 1.5, 0.1);
        assert_close(fit.coefficients[1], -0.5, 0.1);
    }

    #[test]
    fn logistic_fractional_targets() {
        // Fit directly to exact probabilities: should recover near-exactly.
        let betas = (0.0..=1.0, ());
        let _ = betas;
        let feats: Vec<Vec<f64>> = (-30..=30).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = feats.iter().map(|f| sigmoid(0.8 * f[0] + 0.2)).collect();
        let fit = Logistic::fit(&feats, &ys).unwrap();
        assert_close(fit.coefficients[0], 0.8, 1e-6);
        assert_close(fit.coefficients[1], 0.2, 1e-6);
    }

    #[test]
    fn logistic_weighted_equals_replicated() {
        let feats = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![0.1, 0.5, 0.9];
        let w = vec![10.0, 10.0, 10.0];
        let a = Logistic::fit_weighted(&feats, &ys, Some(&w)).unwrap();
        let b = Logistic::fit(&feats, &ys).unwrap();
        // Uniform weights should not change the optimum.
        assert_close(a.coefficients[0], b.coefficients[0], 1e-6);
        assert_close(a.coefficients[1], b.coefficients[1], 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_close(sigmoid(800.0), 1.0, 1e-12);
        assert_close(sigmoid(-800.0), 0.0, 1e-12);
    }
}
