//! Deterministic RNG construction. Every stochastic component in the
//! workspace takes an explicit `Rng`, and experiments derive per-trial
//! seeds from a root seed so runs are exactly reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministically seeded RNG.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a root seed and a stream index using
/// SplitMix64 finalization — child streams are decorrelated even for
/// consecutive indices.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut z = root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG for a derived stream.
pub fn stream_rng(root: u64, stream: u64) -> StdRng {
    seeded_rng(derive_seed(root, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = seeded_rng(42);
            (0..10).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = seeded_rng(42);
            (0..10).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        let mut r0 = stream_rng(7, 0);
        let mut r1 = stream_rng(7, 1);
        let x0: u64 = r0.gen();
        let x1: u64 = r1.gen();
        assert_ne!(x0, x1);
    }

    #[test]
    fn derive_seed_is_pure() {
        assert_eq!(derive_seed(123, 456), derive_seed(123, 456));
    }
}
