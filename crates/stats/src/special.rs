//! Special functions: log-gamma, log-factorial, error function, and the
//! regularized incomplete gamma functions needed for Poisson tails.

/// Lanczos coefficients for `g = 7`, `n = 9` (Boost/Numerical Recipes variant).
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)] // published table values, kept verbatim
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~14 significant digits over the domain used by this crate.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Cached `ln(k!)` for small `k`; falls back to `ln_gamma` above the table.
const LN_FACT_TABLE_LEN: usize = 256;

fn ln_fact_table() -> &'static [f64; LN_FACT_TABLE_LEN] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; LN_FACT_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0; LN_FACT_TABLE_LEN];
        for k in 2..LN_FACT_TABLE_LEN {
            t[k] = t[k - 1] + (k as f64).ln();
        }
        t
    })
}

/// Natural log of `k!`.
pub fn ln_factorial(k: u64) -> f64 {
    if (k as usize) < LN_FACT_TABLE_LEN {
        ln_fact_table()[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Error function, evaluated through the regularized incomplete gamma
/// identity `erf(x) = sign(x) · P(1/2, x²)` (accurate to ~1e-14).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, evaluated through
/// `Q(1/2, x²)` for positive `x` so the tail keeps full relative accuracy.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        gamma_q(0.5, x * x)
    } else {
        2.0 - gamma_q(0.5, x * x)
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (ln_pre.exp() * sum).clamp(0.0, 1.0)
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction representation of Q(a, x).
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (ln_pre.exp() * h).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-11);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(11) = 10! = 3628800
        assert_close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling check at x = 1000.
        let x: f64 = 1000.0;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert_close(ln_gamma(x), stirling, 1e-6);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_consistency() {
        assert_close(ln_factorial(0), 0.0, 1e-15);
        assert_close(ln_factorial(1), 0.0, 1e-15);
        assert_close(ln_factorial(5), (120.0f64).ln(), 1e-12);
        // Table edge and beyond must agree with ln_gamma.
        for &k in &[254u64, 255, 256, 257, 1000] {
            assert_close(ln_factorial(k), ln_gamma(k as f64 + 1.0), 1e-9);
        }
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-12);
        assert_close(erf(1.0), 0.842_700_79, 2e-7);
        assert_close(erf(-1.0), -0.842_700_79, 2e-7);
        assert_close(erf(2.0), 0.995_322_27, 2e-7);
        assert!(erf(6.0) > 0.999_999_9);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.0, 0.3, 1.0, 2.5] {
            assert_close(erfc(x) + erfc(-x), 2.0, 1e-9);
        }
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[
            (1.0, 0.5),
            (3.0, 2.0),
            (10.0, 12.0),
            (50.0, 40.0),
            (200.0, 210.0),
        ] {
            assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_q_poisson_identity() {
        // Q(k+1, λ) = P(Pois(λ) ≤ k); check against direct sum for λ = 4.
        let lambda = 4.0f64;
        let mut cdf = 0.0;
        let mut term = (-lambda).exp();
        for k in 0u64..8 {
            cdf += term;
            let q = gamma_q(k as f64 + 1.0, lambda);
            assert_close(q, cdf, 1e-10);
            term *= lambda / (k as f64 + 1.0);
        }
    }
}
