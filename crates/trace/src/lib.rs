//! `ft-trace` — request-scoped span tracing from socket to solver
//! kernel.
//!
//! The observability plane's counters and histograms (`ft-metrics`)
//! say *how often* and *how slow*; this crate answers **where a
//! specific slow request spent its time**. The design goals, in
//! order:
//!
//! 1. **~zero hot-path cost.** An untraced call site pays one TLS
//!    access and one branch (`trace_id == 0`). A traced span writes a
//!    fixed-size record into a **per-thread bounded ring** — no
//!    allocation, no lock, no syscall on the hot path.
//! 2. **Never torn.** Rings are written only by their owning thread
//!    but may be read cross-thread (tests, sweeps). Each slot is a
//!    [seqlock]: the writer bumps a sequence odd → writes fields →
//!    bumps it even; a reader that observes an odd or changed sequence
//!    discards the slot. A record is either whole or absent.
//! 3. **Well-formed trees under overwrite.** The ring overwrites
//!    oldest-first, and a span's record is written **at guard drop** —
//!    so a parent's record always lands *after* every descendant's.
//!    Strict overwrite-oldest eviction therefore preserves the
//!    invariant: any surviving span's ancestors survived too.
//! 4. **Compile-out-able.** The `trace-off` cargo feature swaps in the
//!    no-op twin at the bottom of this file — the same idiom as
//!    `ft-core`'s `lockcheck` — so every guard is zero-sized and every
//!    call inlines to nothing.
//!
//! A trace is **thread-local by construction**: the root guard
//! ([`begin`]/[`begin_at`]) and all its child [`span`]s live on one
//! thread (`ft-exec` records dispatch/join on the *calling* thread;
//! pool workers carry no trace context). Dropping the root writes the
//! root record, sweeps the owning thread's ring for the trace id, and
//! publishes a [`CompletedTrace`] into a bounded global store plus a
//! per-op **slow-trace exemplar** store (the N slowest per op), which
//! back `GET /trace/recent`, `GET /trace/{id}`, `GET /trace/export`
//! (Chrome trace-event / Perfetto JSON), and the `exemplar_trace_id`
//! field on `/metrics` histograms.
//!
//! Span names follow the `<crate>.<component>.<verb>` grammar enforced
//! by `ft-audit`'s L6 lint (e.g. `core.registry.quote`).
//!
//! [seqlock]: https://en.wikipedia.org/wiki/Seqlock

use std::fmt::Write as _;
use std::sync::Arc;

/// Maximum live span nesting per trace. Spans opened deeper are inert;
/// their children attach to the nearest recorded ancestor, so the tree
/// stays well-formed.
pub const MAX_DEPTH: usize = 16;

/// Slots per per-thread ring. At 64 bytes a slot this is ~128 KiB per
/// tracing thread — bounded, allocated once, overwritten oldest-first.
pub const RING_SLOTS: usize = 2048;

/// Maximum records one trace may write. A runaway loop of spans stops
/// recording (inert guards) instead of churning the whole ring.
pub const SPAN_BUDGET: u64 = 1024;

/// One finished span, as swept out of a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace_id: u64,
    /// 1 for the trace's root; children get fresh ids per trace.
    pub span_id: u64,
    /// 0 for the root; otherwise the enclosing span's id.
    pub parent_id: u64,
    /// `<crate>.<component>.<verb>` (a `'static` literal — the ring
    /// stores the pointer, never the bytes).
    pub name: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Process-local id of the thread that recorded the span.
    pub tid: u64,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One finished trace: the root's bounds plus every span that survived
/// the ring, sorted by start time.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    pub trace_id: u64,
    /// The operation label the exemplar store keys on (e.g. the
    /// server endpoint label) — defaults to the root span's name.
    pub op: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
    pub spans: Vec<SpanRecord>,
}

impl CompletedTrace {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Render the trace as a self-contained JSON object (the
    /// `GET /trace/{id}` body).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160 + self.spans.len() * 144);
        out.push_str("{\"trace_id\":\"");
        let _ = write!(out, "{:016x}", self.trace_id);
        out.push_str("\",\"op\":");
        push_json_str(&mut out, self.op);
        let _ = write!(
            out,
            ",\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{},\"spans\":[",
            self.start_ns,
            self.end_ns,
            self.duration_ns()
        );
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"span_id\":{},\"parent_id\":{},\"name\":",
                span.span_id, span.parent_id
            );
            push_json_str(&mut out, span.name);
            let _ = write!(
                out,
                ",\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{},\"tid\":{}}}",
                span.start_ns,
                span.end_ns,
                span.duration_ns(),
                span.tid
            );
        }
        out.push_str("]}");
        out
    }

    /// Append this trace's spans as Chrome trace-event (`ph: "X"`)
    /// objects — timestamps in fractional microseconds, as the format
    /// requires.
    fn push_chrome_events(&self, out: &mut String, first: &mut bool) {
        for span in &self.spans {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str("{\"name\":");
            push_json_str(out, span.name);
            let _ = write!(
                out,
                ",\"cat\":\"ft\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
                span.start_ns as f64 / 1000.0,
                span.duration_ns() as f64 / 1000.0,
                span.tid
            );
            let _ = write!(
                out,
                ",\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":{},\"parent_id\":{},\"op\":",
                span.trace_id, span.span_id, span.parent_id
            );
            push_json_str(out, self.op);
            out.push_str("}}");
        }
    }
}

/// Canonical wire form of a trace id (16 hex digits, as carried in the
/// `x-ft-trace` header and `/trace/{id}` path segment).
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse the wire form back; rejects 0 (the "no trace" sentinel).
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().filter(|&id| id != 0)
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a set of completed traces as one Chrome trace-event /
/// Perfetto-compatible JSON document.
fn chrome_document(traces: &[Arc<CompletedTrace>]) -> String {
    let mut out = String::with_capacity(64 + traces.len() * 512);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        trace.push_chrome_events(&mut out, &mut first);
    }
    out.push_str("]}");
    out
}

// ---- cross-process trace merging ------------------------------------
//
// A fleet front tier proxies one request across several processes;
// each process records its own segment of the trace under the shared
// trace id. `merge_documents` stitches the per-process `to_json`
// documents into one tree: remote segments keep their internal
// structure, their roots are reparented under the local root, and span
// ids are offset so they stay unique. The parser below reads exactly
// the format `CompletedTrace::to_json` emits — no general JSON
// machinery, no dependencies — and is available in `trace-off` builds
// too (it is a pure document transform).

/// One span as parsed back out of a `to_json` document. Names are kept
/// as raw JSON string tokens (quotes and escapes included) so merging
/// never re-escapes.
struct ParsedSpan<'a> {
    span_id: u64,
    parent_id: u64,
    name_raw: &'a str,
    start_ns: u64,
    end_ns: u64,
    tid: u64,
}

struct ParsedTrace<'a> {
    trace_id_raw: &'a str,
    op_raw: &'a str,
    spans: Vec<ParsedSpan<'a>>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn lit(&mut self, expected: &str) -> Result<(), String> {
        let end = self.at + expected.len();
        if self.bytes.get(self.at..end) == Some(expected.as_bytes()) {
            self.at = end;
            Ok(())
        } else {
            Err(format!(
                "trace document: expected `{expected}` at byte {}",
                self.at
            ))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn num(&mut self) -> Result<u64, String> {
        let start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.at == start {
            return Err(format!("trace document: expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("trace document: bad number at byte {start}"))
    }

    /// A JSON string, returned as its raw token (quotes included).
    fn str_raw(&mut self, source: &'a str) -> Result<&'a str, String> {
        let start = self.at;
        self.lit("\"")?;
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(&source[start..self.at]);
                }
                Some(b'\\') => self.at += 2,
                Some(_) => self.at += 1,
                None => return Err("trace document: unterminated string".into()),
            }
        }
    }
}

fn parse_document(doc: &str) -> Result<ParsedTrace<'_>, String> {
    let mut c = Cursor {
        bytes: doc.as_bytes(),
        at: 0,
    };
    c.lit("{\"trace_id\":")?;
    let trace_id_raw = c.str_raw(doc)?;
    c.lit(",\"op\":")?;
    let op_raw = c.str_raw(doc)?;
    c.lit(",\"start_ns\":")?;
    c.num()?;
    c.lit(",\"end_ns\":")?;
    c.num()?;
    c.lit(",\"duration_ns\":")?;
    c.num()?;
    c.lit(",\"spans\":[")?;
    let mut spans = Vec::new();
    if c.peek() == Some(b']') {
        c.at += 1;
    } else {
        loop {
            c.lit("{\"span_id\":")?;
            let span_id = c.num()?;
            c.lit(",\"parent_id\":")?;
            let parent_id = c.num()?;
            c.lit(",\"name\":")?;
            let name_raw = c.str_raw(doc)?;
            c.lit(",\"start_ns\":")?;
            let start_ns = c.num()?;
            c.lit(",\"end_ns\":")?;
            let end_ns = c.num()?;
            c.lit(",\"duration_ns\":")?;
            c.num()?;
            c.lit(",\"tid\":")?;
            let tid = c.num()?;
            c.lit("}")?;
            spans.push(ParsedSpan {
                span_id,
                parent_id,
                name_raw,
                start_ns,
                end_ns,
                tid,
            });
            match c.peek() {
                Some(b',') => c.at += 1,
                Some(b']') => {
                    c.at += 1;
                    break;
                }
                _ => return Err("trace document: bad spans array".into()),
            }
        }
    }
    c.lit("}")?;
    Ok(ParsedTrace {
        trace_id_raw,
        op_raw,
        spans,
    })
}

/// Stitch per-process trace documents (each a `GET /trace/{id}` body
/// for the **same** trace id) into one tree rooted at `local`'s root.
///
/// Remote span ids are offset to stay unique; remote roots
/// (`parent_id == 0`) are reparented under the local root; each remote
/// segment's internal parent/child structure is preserved. Because the
/// trace clock is process-local (nanoseconds since process start),
/// remote timelines are rebased to start at the local root's start —
/// durations are exact, cross-process alignment is nominal.
///
/// Errors if any document does not parse as `CompletedTrace::to_json`
/// output.
pub fn merge_documents(local: &str, remotes: &[String]) -> Result<String, String> {
    let base = parse_document(local)?;
    let local_root = base
        .spans
        .iter()
        .find(|s| s.parent_id == 0)
        .map(|s| (s.span_id, s.start_ns))
        .ok_or_else(|| "trace document: local trace has no root span".to_string())?;
    let mut spans: Vec<ParsedSpan<'_>> = base.spans;
    let mut next_offset: u64 = spans.iter().map(|s| s.span_id).max().unwrap_or(0);
    let mut parsed_remotes = Vec::with_capacity(remotes.len());
    for remote in remotes {
        parsed_remotes.push(parse_document(remote)?);
    }
    for remote in &parsed_remotes {
        let offset = next_offset;
        let rebase = remote.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        for span in &remote.spans {
            next_offset = next_offset.max(span.span_id + offset);
            spans.push(ParsedSpan {
                span_id: span.span_id + offset,
                parent_id: if span.parent_id == 0 {
                    local_root.0
                } else {
                    span.parent_id + offset
                },
                name_raw: span.name_raw,
                start_ns: span.start_ns - rebase + local_root.1,
                end_ns: span.end_ns - rebase + local_root.1,
                tid: span.tid,
            });
        }
    }
    spans.sort_by_key(|s| (s.start_ns, s.span_id));
    let start_ns = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let end_ns = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
    let mut out = String::with_capacity(160 + spans.len() * 144);
    let _ = write!(
        out,
        "{{\"trace_id\":{},\"op\":{},\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{},\"spans\":[",
        base.trace_id_raw,
        base.op_raw,
        start_ns,
        end_ns,
        end_ns.saturating_sub(start_ns)
    );
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"span_id\":{},\"parent_id\":{},\"name\":{},\"start_ns\":{},\"end_ns\":{},\
             \"duration_ns\":{},\"tid\":{}}}",
            span.span_id,
            span.parent_id,
            span.name_raw,
            span.start_ns,
            span.end_ns,
            span.end_ns.saturating_sub(span.start_ns),
            span.tid
        );
    }
    out.push_str("]}");
    Ok(out)
}

#[cfg(not(feature = "trace-off"))]
mod imp {
    use super::{chrome_document, CompletedTrace, SpanRecord, MAX_DEPTH, RING_SLOTS, SPAN_BUDGET};
    use std::cell::RefCell;
    use std::collections::{HashMap, VecDeque};
    use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// Completed traces kept for `GET /trace/recent` / `{id}` lookup.
    const COMPLETED_CAP: usize = 256;
    /// Slowest traces kept per op label.
    const EXEMPLARS_PER_OP: usize = 4;

    /// Tracing is compiled in (the `trace-off` twin returns `false`).
    pub const fn enabled() -> bool {
        true
    }

    fn anchor() -> Instant {
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        *ANCHOR.get_or_init(Instant::now)
    }

    /// Nanoseconds on the process-wide monotonic trace clock.
    pub fn now_ns() -> u64 {
        anchor().elapsed().as_nanos() as u64
    }

    fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A fresh process-unique nonzero trace id (a mixed counter, so
    /// ids look random on the wire but never collide in-process).
    pub fn next_trace_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        // ORDERING: Relaxed — a unique-id counter; only atomicity
        // matters, no ordering with other memory.
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(n);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Deterministic 1-in-`every` sampler (process-global counter).
    pub fn sample(every: u64) -> bool {
        static TICK: AtomicU64 = AtomicU64::new(0);
        if every <= 1 {
            return true;
        }
        // ORDERING: Relaxed — a sampling counter; no ordering needed.
        TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(every)
    }

    // ---- per-thread seqlock ring -------------------------------------

    struct Slot {
        /// Seqlock sequence: even = stable, odd = write in progress.
        seq: AtomicU64,
        trace_id: AtomicU64,
        span_id: AtomicU64,
        parent_id: AtomicU64,
        start_ns: AtomicU64,
        end_ns: AtomicU64,
        name_ptr: AtomicUsize,
        name_len: AtomicUsize,
    }

    impl Slot {
        const fn new() -> Self {
            Slot {
                seq: AtomicU64::new(0),
                trace_id: AtomicU64::new(0),
                span_id: AtomicU64::new(0),
                parent_id: AtomicU64::new(0),
                start_ns: AtomicU64::new(0),
                end_ns: AtomicU64::new(0),
                name_ptr: AtomicUsize::new(0),
                name_len: AtomicUsize::new(0),
            }
        }
    }

    struct Ring {
        /// Process-local id of the owning thread (exported as `tid`).
        tid: u64,
        /// Next write position; owner-thread only.
        head: AtomicUsize,
        slots: Box<[Slot]>,
    }

    impl Ring {
        fn new(tid: u64) -> Self {
            Ring {
                tid,
                head: AtomicUsize::new(0),
                slots: (0..RING_SLOTS).map(|_| Slot::new()).collect(),
            }
        }

        /// Publish one record (single writer: the owning thread).
        fn write(
            &self,
            trace_id: u64,
            span_id: u64,
            parent_id: u64,
            name: &'static str,
            start_ns: u64,
            end_ns: u64,
        ) {
            // ORDERING: Relaxed — `head` is read and written only by
            // the owning thread; readers scan every slot instead.
            let i = self.head.load(Ordering::Relaxed);
            self.head.store(i.wrapping_add(1), Ordering::Relaxed);
            let slot = &self.slots[i % RING_SLOTS];
            // ORDERING: Relaxed — the odd marker is ordered ahead of
            // the field stores by the Release fence just below; only
            // the owning thread writes `seq`.
            let s = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(s.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
            // The field stores below sit between the Release fence
            // above and the Release publish of `seq`; seqlock readers
            // discard anything observed mid-write.
            // ORDERING: Relaxed — covered by that fence/publish bracket.
            slot.trace_id.store(trace_id, Ordering::Relaxed);
            slot.span_id.store(span_id, Ordering::Relaxed);
            slot.parent_id.store(parent_id, Ordering::Relaxed);
            slot.start_ns.store(start_ns, Ordering::Relaxed);
            slot.end_ns.store(end_ns, Ordering::Relaxed);
            slot.name_ptr
                .store(name.as_ptr() as usize, Ordering::Relaxed);
            slot.name_len.store(name.len(), Ordering::Relaxed);
            // ORDERING: Release — publishes the field stores above to
            // any reader that Acquire-loads this even sequence.
            slot.seq.store(s.wrapping_add(2), Ordering::Release);
        }

        /// Seqlock-validated read of one slot; `None` if the slot is
        /// empty, mid-write, changed under us, or filtered out.
        fn read(&self, index: usize, filter: Option<u64>) -> Option<SpanRecord> {
            let slot = &self.slots[index];
            // ORDERING: Acquire — pairs with the writer's Release
            // publish; field loads below can't move above this.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                return None;
            }
            // Validated after the fact: the Acquire fence below plus
            // the `s1 == s2` check prove no writer touched the slot
            // while these loaded.
            // ORDERING: Relaxed — covered by that fence/validation pair.
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let span_id = slot.span_id.load(Ordering::Relaxed);
            let parent_id = slot.parent_id.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            let name_ptr = slot.name_ptr.load(Ordering::Relaxed);
            let name_len = slot.name_len.load(Ordering::Relaxed);
            // ORDERING: Acquire fence — pairs with the writer's Release
            // fence; orders the field loads above before the re-load.
            fence(Ordering::Acquire);
            // ORDERING: Relaxed — the Acquire fence above orders the
            // field loads before this re-load.
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 || trace_id == 0 {
                return None;
            }
            if filter.is_some_and(|want| want != trace_id) {
                return None;
            }
            // SAFETY: `name_ptr`/`name_len` were stored together from a
            // `&'static str` under the seqlock, and the `s1 == s2`
            // check above proves the pair was read un-torn (a torn
            // pointer/length pair is discarded before reaching this
            // line); the referent is live UTF-8 for the program's
            // lifetime.
            let name: &'static str = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    name_ptr as *const u8,
                    name_len,
                ))
            };
            Some(SpanRecord {
                trace_id,
                span_id,
                parent_id,
                name,
                start_ns,
                end_ns,
                tid: self.tid,
            })
        }

        fn sweep(&self, trace_id: u64) -> Vec<SpanRecord> {
            (0..RING_SLOTS)
                .filter_map(|i| self.read(i, Some(trace_id)))
                .collect()
        }
    }

    fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
        static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn next_tid() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        // ORDERING: Relaxed — a unique-id counter.
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    // ---- per-thread trace context ------------------------------------

    struct Ctx {
        /// 0 = no trace active on this thread.
        trace_id: u64,
        /// Exemplar-store key; defaults to the root span name until
        /// [`set_current_op`] refines it (e.g. the endpoint label).
        op: &'static str,
        start_ns: u64,
        next_span: u64,
        depth: usize,
        /// Open-span ids, `stack[0]` = the root (span id 1).
        stack: [u64; MAX_DEPTH],
        recorded: u64,
    }

    impl Ctx {
        const fn new() -> Self {
            Ctx {
                trace_id: 0,
                op: "",
                start_ns: 0,
                next_span: 1,
                depth: 0,
                stack: [0; MAX_DEPTH],
                recorded: 0,
            }
        }
    }

    thread_local! {
        static RING: Arc<Ring> = {
            let ring = Arc::new(Ring::new(next_tid()));
            rings()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            ring
        };
        static CTX: RefCell<Ctx> = const { RefCell::new(Ctx::new()) };
    }

    // ---- guards ------------------------------------------------------

    /// RAII root of one trace on this thread. Dropping it writes the
    /// root record, sweeps this thread's ring, and publishes the
    /// completed trace to the recent/exemplar stores.
    pub struct TraceGuard {
        live: bool,
        name: &'static str,
    }

    /// Start a trace with a fresh id; root span named `name`.
    pub fn begin(name: &'static str) -> TraceGuard {
        begin_at(next_trace_id(), name, now_ns())
    }

    /// Start a trace under a caller-supplied id (header propagation).
    pub fn begin_with(trace_id: u64, name: &'static str) -> TraceGuard {
        begin_at(trace_id, name, now_ns())
    }

    /// Start a trace with an explicit (possibly backdated) root start —
    /// the reactor uses this to charge queue wait to the request.
    /// Inert if `trace_id` is 0 or a trace is already active on this
    /// thread (nested begins never clobber the outer root).
    pub fn begin_at(trace_id: u64, name: &'static str, start_ns: u64) -> TraceGuard {
        if trace_id == 0 {
            return TraceGuard { live: false, name };
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.trace_id != 0 {
                return TraceGuard { live: false, name };
            }
            ctx.trace_id = trace_id;
            ctx.op = name;
            ctx.start_ns = start_ns;
            ctx.next_span = 1;
            ctx.depth = 1;
            ctx.stack[0] = 1;
            ctx.recorded = 0;
            TraceGuard { live: true, name }
        })
    }

    impl TraceGuard {
        /// Did this guard actually open a trace?
        pub fn is_live(&self) -> bool {
            self.live
        }
    }

    impl Drop for TraceGuard {
        fn drop(&mut self) {
            if !self.live {
                return;
            }
            let end_ns = now_ns();
            let (trace_id, op, start_ns) = CTX.with(|ctx| {
                let mut ctx = ctx.borrow_mut();
                let out = (ctx.trace_id, ctx.op, ctx.start_ns);
                ctx.trace_id = 0;
                ctx.depth = 0;
                out
            });
            if trace_id == 0 {
                return;
            }
            RING.with(|ring| {
                ring.write(trace_id, 1, 0, self.name, start_ns, end_ns);
                finalize(ring, trace_id, op, start_ns, end_ns);
            });
        }
    }

    /// RAII child span. Inert (and free to drop) when no trace is
    /// active, the nesting cap is hit, or the span budget is spent.
    pub struct Span {
        live: bool,
        span_id: u64,
        name: &'static str,
        start_ns: u64,
    }

    /// Open a child span under the current trace, if any.
    #[inline]
    pub fn span(name: &'static str) -> Span {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.trace_id == 0 || ctx.depth >= MAX_DEPTH || ctx.recorded >= SPAN_BUDGET {
                return Span {
                    live: false,
                    span_id: 0,
                    name,
                    start_ns: 0,
                };
            }
            ctx.next_span += 1;
            let span_id = ctx.next_span;
            let depth = ctx.depth;
            ctx.stack[depth] = span_id;
            ctx.depth += 1;
            Span {
                live: true,
                span_id,
                name,
                start_ns: now_ns(),
            }
        })
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if !self.live {
                return;
            }
            let end_ns = now_ns();
            CTX.with(|ctx| {
                let mut ctx = ctx.borrow_mut();
                if ctx.trace_id == 0 || ctx.depth <= 1 {
                    return;
                }
                ctx.depth -= 1;
                let parent = ctx.stack[ctx.depth - 1];
                ctx.recorded += 1;
                let trace_id = ctx.trace_id;
                RING.with(|ring| {
                    ring.write(
                        trace_id,
                        self.span_id,
                        parent,
                        self.name,
                        self.start_ns,
                        end_ns,
                    )
                });
            });
        }
    }

    /// Record a span from externally measured bounds (e.g. the
    /// reactor's queue wait), parented under the current open span.
    pub fn record(name: &'static str, start_ns: u64, end_ns: u64) {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.trace_id == 0 || ctx.depth == 0 || ctx.recorded >= SPAN_BUDGET {
                return;
            }
            ctx.next_span += 1;
            let span_id = ctx.next_span;
            let parent = ctx.stack[ctx.depth - 1];
            ctx.recorded += 1;
            let trace_id = ctx.trace_id;
            RING.with(|ring| ring.write(trace_id, span_id, parent, name, start_ns, end_ns));
        });
    }

    /// The id of the trace active on this thread, if any.
    pub fn current_trace_id() -> Option<u64> {
        CTX.with(|ctx| {
            let id = ctx.borrow().trace_id;
            (id != 0).then_some(id)
        })
    }

    /// Re-key the active trace's exemplar bucket (the router calls
    /// this once the endpoint is classified).
    pub fn set_current_op(op: &'static str) {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.trace_id != 0 {
                ctx.op = op;
            }
        });
    }

    // ---- completed-trace stores --------------------------------------

    fn completed() -> &'static Mutex<VecDeque<Arc<CompletedTrace>>> {
        static STORE: OnceLock<Mutex<VecDeque<Arc<CompletedTrace>>>> = OnceLock::new();
        STORE.get_or_init(|| Mutex::new(VecDeque::new()))
    }

    /// Exemplar store layout: op label → slowest traces, slowest first.
    type ExemplarMap = HashMap<&'static str, Vec<Arc<CompletedTrace>>>;

    fn exemplar_store() -> &'static Mutex<ExemplarMap> {
        static STORE: OnceLock<Mutex<ExemplarMap>> = OnceLock::new();
        STORE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn finalize(ring: &Ring, trace_id: u64, op: &'static str, start_ns: u64, end_ns: u64) {
        let mut spans = ring.sweep(trace_id);
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        let trace = Arc::new(CompletedTrace {
            trace_id,
            op,
            start_ns,
            end_ns,
            spans,
        });
        {
            let mut store = completed().lock().unwrap_or_else(|e| e.into_inner());
            if store.len() >= COMPLETED_CAP {
                store.pop_front();
            }
            store.push_back(trace.clone());
        }
        let mut exemplars = exemplar_store().lock().unwrap_or_else(|e| e.into_inner());
        let bucket = exemplars.entry(op).or_default();
        bucket.push(trace);
        bucket.sort_by_key(|t| std::cmp::Reverse(t.duration_ns()));
        bucket.truncate(EXEMPLARS_PER_OP);
    }

    /// Look a completed trace up by id (recent store, then exemplars).
    pub fn find(trace_id: u64) -> Option<Arc<CompletedTrace>> {
        let hit = completed()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned();
        hit.or_else(|| {
            exemplar_store()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
                .flatten()
                .find(|t| t.trace_id == trace_id)
                .cloned()
        })
    }

    /// The most recently completed traces, newest first.
    pub fn recent(limit: usize) -> Vec<Arc<CompletedTrace>> {
        completed()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .rev()
            .take(limit)
            .cloned()
            .collect()
    }

    /// Slow-trace exemplars per op label, slowest first, ops sorted.
    pub fn exemplars() -> Vec<(&'static str, Vec<Arc<CompletedTrace>>)> {
        let store = exemplar_store().lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<_> = store.iter().map(|(op, v)| (*op, v.clone())).collect();
        out.sort_by_key(|(op, _)| *op);
        out
    }

    /// The slowest exemplar trace id for `op`, if one is stored —
    /// surfaced as `exemplar_trace_id` on `/metrics` histograms.
    pub fn exemplar_id(op: &str) -> Option<u64> {
        exemplar_store()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(op)
            .and_then(|v| v.first())
            .map(|t| t.trace_id)
    }

    /// Every validated record currently in any thread's ring —
    /// cross-thread seqlock reads, for tests and diagnostics.
    pub fn snapshot_all_rings() -> Vec<SpanRecord> {
        let rings: Vec<Arc<Ring>> = rings().lock().unwrap_or_else(|e| e.into_inner()).clone();
        rings
            .iter()
            .flat_map(|ring| (0..RING_SLOTS).filter_map(|i| ring.read(i, None)))
            .collect()
    }

    // ---- JSON views --------------------------------------------------

    /// `GET /trace/{id}` body.
    pub fn find_json(trace_id: u64) -> Option<String> {
        find(trace_id).map(|t| t.to_json())
    }

    /// `GET /trace/recent` body: newest-first traces plus the exemplar
    /// index (`op` → slowest trace ids).
    pub fn recent_json(limit: usize) -> String {
        let traces = recent(limit);
        let mut out = String::with_capacity(64 + traces.len() * 256);
        out.push_str("{\"traces\":[");
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&trace.to_json());
        }
        out.push_str("],\"exemplars\":{");
        for (i, (op, traces)) in exemplars().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            super::push_json_str(&mut out, op);
            out.push_str(":[");
            for (j, trace) in traces.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!("\"{:016x}\"", trace.trace_id),
                );
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// `GET /trace/export` / `--trace-out` body: every stored trace as
    /// one Chrome trace-event JSON document, oldest first.
    pub fn export_chrome_json() -> String {
        let traces: Vec<Arc<CompletedTrace>> = completed()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        chrome_document(&traces)
    }
}

// ---- no-op twin for `trace-off` builds -------------------------------

#[cfg(feature = "trace-off")]
mod imp {
    use super::{CompletedTrace, SpanRecord};
    use std::sync::Arc;

    /// Tracing is compiled out.
    pub const fn enabled() -> bool {
        false
    }

    /// Always 0 in `trace-off` builds (call sites only feed it back
    /// into inert guards).
    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Still unique (a plain counter) so header-injection call sites
    /// keep working; the traces themselves are never recorded.
    pub fn next_trace_id() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        // ORDERING: Relaxed — a unique-id counter.
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// Never samples in `trace-off` builds.
    #[inline(always)]
    pub fn sample(_every: u64) -> bool {
        false
    }

    /// Zero-sized stand-in; the explicit (empty) `Drop` keeps call
    /// sites identical across features (mirrors `lockcheck`'s twin).
    pub struct TraceGuard;

    impl TraceGuard {
        pub fn is_live(&self) -> bool {
            false
        }
    }

    impl Drop for TraceGuard {
        fn drop(&mut self) {}
    }

    #[inline(always)]
    pub fn begin(_name: &'static str) -> TraceGuard {
        TraceGuard
    }

    #[inline(always)]
    pub fn begin_with(_trace_id: u64, _name: &'static str) -> TraceGuard {
        TraceGuard
    }

    #[inline(always)]
    pub fn begin_at(_trace_id: u64, _name: &'static str, _start_ns: u64) -> TraceGuard {
        TraceGuard
    }

    /// Zero-sized stand-in span.
    pub struct Span;

    impl Drop for Span {
        fn drop(&mut self) {}
    }

    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn record(_name: &'static str, _start_ns: u64, _end_ns: u64) {}

    #[inline(always)]
    pub fn current_trace_id() -> Option<u64> {
        None
    }

    #[inline(always)]
    pub fn set_current_op(_op: &'static str) {}

    pub fn find(_trace_id: u64) -> Option<Arc<CompletedTrace>> {
        None
    }

    pub fn recent(_limit: usize) -> Vec<Arc<CompletedTrace>> {
        Vec::new()
    }

    pub fn exemplars() -> Vec<(&'static str, Vec<Arc<CompletedTrace>>)> {
        Vec::new()
    }

    pub fn exemplar_id(_op: &str) -> Option<u64> {
        None
    }

    pub fn snapshot_all_rings() -> Vec<SpanRecord> {
        Vec::new()
    }

    pub fn find_json(_trace_id: u64) -> Option<String> {
        None
    }

    pub fn recent_json(_limit: usize) -> String {
        "{\"traces\":[],\"exemplars\":{}}".to_string()
    }

    pub fn export_chrome_json() -> String {
        super::chrome_document(&[])
    }
}

pub use imp::{
    begin, begin_at, begin_with, current_trace_id, enabled, exemplar_id, exemplars,
    export_chrome_json, find, find_json, next_trace_id, now_ns, recent, recent_json, record,
    sample, set_current_op, snapshot_all_rings, span, Span, TraceGuard,
};

#[cfg(all(test, not(feature = "trace-off")))]
mod tests {
    use super::*;

    fn doc(
        trace_id: u64,
        op: &'static str,
        spans: Vec<(u64, u64, &'static str, u64, u64)>,
    ) -> String {
        let spans: Vec<SpanRecord> = spans
            .into_iter()
            .map(|(span_id, parent_id, name, start_ns, end_ns)| SpanRecord {
                trace_id,
                span_id,
                parent_id,
                name,
                start_ns,
                end_ns,
                tid: 1,
            })
            .collect();
        let start_ns = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end_ns = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        CompletedTrace {
            trace_id,
            op,
            start_ns,
            end_ns,
            spans,
        }
        .to_json()
    }

    #[test]
    fn merge_reparents_remote_roots_under_the_local_root() {
        let local = doc(
            7,
            "campaign_price",
            vec![
                (1, 0, "router.request.serve", 100, 900),
                (2, 1, "router.backend.proxy", 200, 800),
            ],
        );
        // Remote clock is process-local (starts near zero) and its
        // span ids collide with the local ones.
        let remote_a = doc(
            7,
            "campaign_price",
            vec![
                (1, 0, "server.request.serve", 10, 60),
                (2, 1, "core.registry.quote", 20, 50),
            ],
        );
        let remote_b = doc(
            7,
            "campaign_price",
            vec![(1, 0, "server.request.serve", 5, 25)],
        );
        let merged = merge_documents(&local, &[remote_a, remote_b]).unwrap();
        let parsed = parse_document(&merged).unwrap();
        assert_eq!(parsed.trace_id_raw, "\"0000000000000007\"");
        assert_eq!(parsed.spans.len(), 5);
        // Ids unique; every remote root now hangs off local span 1.
        let mut ids: Vec<u64> = parsed.spans.iter().map(|s| s.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
        let reparented = parsed
            .spans
            .iter()
            .filter(|s| s.name_raw == "\"server.request.serve\"")
            .collect::<Vec<_>>();
        assert_eq!(reparented.len(), 2);
        assert!(reparented.iter().all(|s| s.parent_id == 1));
        // Remote internal structure survives: the quote span's parent
        // is its own segment's root, not the local root.
        let quote = parsed
            .spans
            .iter()
            .find(|s| s.name_raw == "\"core.registry.quote\"")
            .unwrap();
        let remote_root = parsed
            .spans
            .iter()
            .find(|s| s.span_id == quote.parent_id)
            .unwrap();
        assert_eq!(remote_root.name_raw, "\"server.request.serve\"");
        assert_eq!(remote_root.parent_id, 1);
        // Remote timelines are rebased into the local window, and the
        // merged envelope still covers every span.
        assert!(parsed.spans.iter().all(|s| s.start_ns >= 100));
        assert_eq!(quote.end_ns - quote.start_ns, 30);
    }

    #[test]
    fn merge_of_local_alone_is_stable() {
        let local = doc(9, "x", vec![(1, 0, "router.request.serve", 0, 10)]);
        let merged = merge_documents(&local, &[]).unwrap();
        assert_eq!(merged, local);
    }

    #[test]
    fn merge_rejects_malformed_documents() {
        let local = doc(9, "x", vec![(1, 0, "router.request.serve", 0, 10)]);
        assert!(merge_documents("{}", &[]).is_err());
        assert!(merge_documents(&local, &["not json".to_string()]).is_err());
        // A rootless local document (every span parented) is an error,
        // not a silent mis-merge.
        let rootless = doc(9, "x", vec![(2, 1, "router.backend.proxy", 0, 10)]);
        assert!(merge_documents(&rootless, &[]).is_err());
    }

    #[test]
    fn trace_id_wire_roundtrip() {
        let id = next_trace_id();
        assert_ne!(id, 0);
        let wire = format_trace_id(id);
        assert_eq!(wire.len(), 16);
        assert_eq!(parse_trace_id(&wire), Some(id));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("0"), None);
        assert_eq!(parse_trace_id("zzzz"), None);
        assert_eq!(parse_trace_id("123456789012345678"), None);
    }

    #[test]
    fn ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(next_trace_id()));
        }
    }

    #[test]
    fn sampler_fires_once_per_period() {
        let mut hits = 0;
        for _ in 0..64 {
            if sample(8) {
                hits += 1;
            }
        }
        assert_eq!(hits, 8);
        assert!(sample(1));
    }

    #[test]
    fn root_only_trace_completes() {
        let id = next_trace_id();
        {
            let _root = begin_with(id, "trace.test.root_only");
        }
        let trace = find(id).expect("trace stored");
        assert_eq!(trace.trace_id, id);
        assert_eq!(trace.op, "trace.test.root_only");
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].span_id, 1);
        assert_eq!(trace.spans[0].parent_id, 0);
        assert!(trace.spans[0].end_ns >= trace.spans[0].start_ns);
    }

    #[test]
    fn child_spans_nest_strictly() {
        let id = next_trace_id();
        {
            let _root = begin_with(id, "trace.test.nest");
            {
                let _a = span("trace.test.outer");
                let _b = span("trace.test.inner");
            }
            let _c = span("trace.test.sibling");
        }
        let trace = find(id).expect("trace stored");
        assert_eq!(trace.spans.len(), 4);
        let by_name = |name: &str| {
            trace
                .spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("span {name} present"))
        };
        let root = by_name("trace.test.nest");
        let outer = by_name("trace.test.outer");
        let inner = by_name("trace.test.inner");
        let sibling = by_name("trace.test.sibling");
        assert_eq!(root.parent_id, 0);
        assert_eq!(outer.parent_id, root.span_id);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(sibling.parent_id, root.span_id);
        // Strict interval nesting: child within parent within root.
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
        assert!(outer.start_ns >= root.start_ns && outer.end_ns <= root.end_ns);
        assert!(sibling.start_ns >= root.start_ns && sibling.end_ns <= root.end_ns);
    }

    #[test]
    fn record_attributes_external_interval() {
        let id = next_trace_id();
        let queued = now_ns();
        {
            let _root = begin_at(id, "trace.test.backdate", queued);
            record("trace.test.queue_wait", queued, now_ns());
        }
        let trace = find(id).expect("trace stored");
        let wait = trace
            .spans
            .iter()
            .find(|s| s.name == "trace.test.queue_wait")
            .expect("recorded span present");
        assert_eq!(wait.parent_id, 1);
        assert_eq!(wait.start_ns, queued);
        assert_eq!(trace.start_ns, queued);
    }

    #[test]
    fn untraced_spans_are_inert() {
        assert_eq!(current_trace_id(), None);
        let _s = span("trace.test.orphan");
        drop(_s);
        record("trace.test.orphan_record", 1, 2);
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn nested_begin_is_inert() {
        let id = next_trace_id();
        let _root = begin_with(id, "trace.test.outer_root");
        assert_eq!(current_trace_id(), Some(id));
        {
            let inner = begin(
                // L6 grammar still applies to inert roots.
                "trace.test.inner_root",
            );
            assert!(!inner.is_live());
        }
        // Inner guard's drop must not have clobbered the outer trace.
        assert_eq!(current_trace_id(), Some(id));
    }

    #[test]
    fn depth_cap_reparents_to_nearest_recorded_ancestor() {
        let id = next_trace_id();
        {
            let _root = begin_with(id, "trace.test.deep");
            // Open MAX_DEPTH + 4 nested spans; the over-cap ones are
            // inert, their children attach to the deepest live span.
            fn descend(level: usize) {
                if level == 0 {
                    return;
                }
                let _s = span("trace.test.level");
                descend(level - 1);
            }
            descend(MAX_DEPTH + 4);
        }
        let trace = find(id).expect("trace stored");
        // Root + (MAX_DEPTH - 1) live levels recorded.
        assert_eq!(trace.spans.len(), MAX_DEPTH);
        // Every parent id resolves to a span in the same trace.
        for span in &trace.spans {
            if span.parent_id != 0 {
                assert!(trace.spans.iter().any(|p| p.span_id == span.parent_id));
            }
        }
    }

    #[test]
    fn span_budget_bounds_recording() {
        let id = next_trace_id();
        {
            let _root = begin_with(id, "trace.test.budget");
            for _ in 0..(SPAN_BUDGET + 500) {
                let _s = span("trace.test.tick");
            }
        }
        let trace = find(id).expect("trace stored");
        // Budgeted children + the root.
        assert_eq!(trace.spans.len() as u64, SPAN_BUDGET + 1);
    }

    #[test]
    fn ring_overflow_keeps_tree_well_formed() {
        let id = next_trace_id();
        {
            let _root = begin_with(id, "trace.test.overflow");
            let _mid = span("trace.test.mid");
            // More spans than the ring holds: oldest records fall out,
            // but write-at-drop means surviving spans' ancestors (mid,
            // root — written last) always survive.
            for _ in 0..RING_SLOTS {
                let _s = span("trace.test.churn");
            }
        }
        let trace = find(id).expect("trace stored");
        assert!(trace.spans.len() <= RING_SLOTS);
        for span in &trace.spans {
            if span.parent_id != 0 {
                assert!(
                    trace.spans.iter().any(|p| p.span_id == span.parent_id),
                    "span {} orphaned under overflow",
                    span.span_id
                );
            }
        }
    }

    #[test]
    fn exemplar_store_keeps_slowest() {
        // Distinct op so other tests' traces don't interfere.
        let op = "trace.test.exemplar_op";
        let mut slow_id = 0;
        for i in 0..8 {
            let id = next_trace_id();
            let _root = begin_with(id, op);
            if i == 3 {
                slow_id = id;
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            drop(_root);
        }
        assert_eq!(exemplar_id(op), Some(slow_id));
        let all = exemplars();
        let bucket = &all
            .iter()
            .find(|(o, _)| *o == op)
            .expect("op bucket present")
            .1;
        assert!(bucket.len() <= 4);
        assert_eq!(bucket[0].trace_id, slow_id);
    }

    #[test]
    fn json_views_are_parseable_shape() {
        let id = next_trace_id();
        {
            let _root = begin_with(id, "trace.test.json");
            let _s = span("trace.test.child");
        }
        let body = find_json(id).expect("trace stored");
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains(&format!("\"trace_id\":\"{id:016x}\"")));
        assert!(body.contains("\"spans\":["));
        let recent = recent_json(4);
        assert!(recent.starts_with("{\"traces\":["));
        assert!(recent.contains("\"exemplars\":{"));
        let chrome = export_chrome_json();
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
    }
}
