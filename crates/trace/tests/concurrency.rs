//! Concurrency stress for the per-thread span rings: readers racing a
//! writer that is continuously overwriting its ring must never observe
//! a torn span — every record swept out cross-thread has to be one the
//! writer actually wrote, whole (name, ids, and timestamps from the
//! same write), in the style of `ft-metrics`' tests/concurrency.rs.

#![cfg(not(feature = "trace-off"))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The full set of span names the writer uses; any name outside this
/// set in a swept record is a torn pointer/length pair.
const NAMES: [&str; 4] = [
    "trace.stress.alpha",
    "trace.stress.beta",
    "trace.stress.gamma",
    "trace.stress.delta",
];

#[test]
fn ring_overwrite_never_tears_a_span() {
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Writer: wrap the whole ring many times over, cycling names,
        // so readers race live overwrites the entire run.
        {
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for round in 0..200u64 {
                    let id = ft_trace::next_trace_id();
                    let _root = ft_trace::begin_with(id, NAMES[0]);
                    for i in 0..ft_trace::RING_SLOTS {
                        let _s = ft_trace::span(NAMES[(round as usize + i) % NAMES.len()]);
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }
        // Readers: sweep every ring through the seqlock while the
        // writer churns, and validate every record that comes back.
        for _ in 0..3 {
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut sweeps = 0u64;
                let mut records = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for record in ft_trace::snapshot_all_rings() {
                        records += 1;
                        assert!(
                            NAMES.contains(&record.name),
                            "torn name swept out of ring: {:?} (len {})",
                            record.name,
                            record.name.len()
                        );
                        assert_ne!(record.trace_id, 0);
                        assert_ne!(record.span_id, 0);
                        assert!(
                            record.end_ns >= record.start_ns,
                            "inverted interval: {} > {}",
                            record.start_ns,
                            record.end_ns
                        );
                    }
                    sweeps += 1;
                }
                assert!(sweeps > 0);
                assert!(records > 0, "reader never saw a valid record");
            });
        }
    });
}

#[test]
fn completed_traces_stay_well_formed_under_parallel_tracing() {
    // Several threads trace concurrently; every completed trace must
    // come back with a single root and fully resolvable parent links
    // (rings are per-thread, so parallel traces must not interleave).
    let ids: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut ids = Vec::new();
                    for _ in 0..50 {
                        let id = ft_trace::next_trace_id();
                        {
                            let _root = ft_trace::begin_with(id, NAMES[0]);
                            let _a = ft_trace::span(NAMES[1]);
                            let _b = ft_trace::span(NAMES[2]);
                        }
                        ids.push(id);
                    }
                    ids
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for id in ids.into_iter().flatten() {
        // The recent store is bounded; only assert on traces still
        // resident (the newest ones always are).
        let Some(trace) = ft_trace::find(id) else {
            continue;
        };
        let roots = trace.spans.iter().filter(|s| s.parent_id == 0).count();
        assert_eq!(roots, 1, "trace {id:x} has {roots} roots");
        assert_eq!(trace.spans.len(), 3, "trace {id:x} leaked foreign spans");
        let one_tid = trace.spans[0].tid;
        for span in &trace.spans {
            assert_eq!(span.tid, one_tid, "trace {id:x} crossed threads");
            if span.parent_id != 0 {
                assert!(trace.spans.iter().any(|p| p.span_id == span.parent_id));
            }
        }
    }
}
