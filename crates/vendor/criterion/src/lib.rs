//! Offline stand-in for `criterion`.
//!
//! Implements the bench-definition API surface the workspace uses
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) over a simple wall-clock harness: each benchmark is
//! auto-calibrated to a target per-sample time, `sample_size` samples are
//! collected, and median / min / mean are printed one line per benchmark:
//!
//! ```text
//! bench: <name> ... median 12.345 ms (min 12.1, mean 12.5, 10 samples)
//! ```
//!
//! Machine-readable output: set `CRITERION_JSON=/path/file.json` to append
//! one JSON object per benchmark (used for the checked-in BENCH snapshots).

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target cumulative measurement time per benchmark.
const TARGET_SAMPLE_MS: f64 = 40.0;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark (builder style, like the
    /// real crate's `Criterion::sample_size`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least 2 samples");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.full_name(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least 2 samples");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id.full_name()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: None,
            parameter: parameter.to_string(),
        }
    }

    fn full_name(&self) -> String {
        match &self.function {
            Some(f) => format!("{f}/{}", self.parameter),
            None => self.parameter.clone(),
        }
    }
}

/// Passed to the closure; `iter` measures the supplied routine.
pub struct Bencher {
    /// Iterations per sample, decided by calibration.
    iters: u64,
    /// Duration of the sample measured by the last `iter` call.
    last_sample: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.last_sample = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibration: run single iterations, growing until the routine's cost
    // is known well enough to pick iterations-per-sample.
    let mut b = Bencher {
        iters: 1,
        last_sample: Duration::ZERO,
    };
    f(&mut b); // warm-up
    f(&mut b);
    let once = b.last_sample.as_secs_f64().max(1e-9);
    let iters = ((TARGET_SAMPLE_MS / 1e3 / once).round() as u64).clamp(1, 1_000_000);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            last_sample: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.last_sample.as_secs_f64() * 1e9 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    let (scale, unit) = pick_unit(median);
    println!(
        "bench: {name} ... median {:.3} {unit} (min {:.3}, mean {:.3}, {} samples x {iters} iters)",
        median / scale,
        min / scale,
        mean / scale,
        samples_ns.len(),
    );

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"mean_ns\":{mean:.1},\"samples\":{},\"iters_per_sample\":{iters}}}",
                samples_ns.len(),
            );
        }
    }
}

fn pick_unit(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (1e9, "s")
    } else if ns >= 1e6 {
        (1e6, "ms")
    } else if ns >= 1e3 {
        (1e3, "us")
    } else {
        (1.0, "ns")
    }
}

/// Declare a group of benchmark functions, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group (ignores criterion CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
