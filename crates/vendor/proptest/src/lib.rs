//! Offline stand-in for `proptest`.
//!
//! Provides the macro surface the workspace's property tests use
//! (`proptest!`, `prop_assert!`, `prop_assert_eq!`, `ProptestConfig`,
//! range / tuple / `collection::vec` / `bool::ANY` strategies) over a
//! deterministic per-test RNG. No shrinking: a failing case prints its
//! inputs so it can be reproduced as a plain unit test.

/// Per-test deterministic RNG (SplitMix64), seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property check (returned early by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Input generators.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, min..max)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{$cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{$crate::ProptestConfig::default(); $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name), case + 1, cfg.cases, e, inputs
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3u32..7, k in 1usize..4) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn vec_and_tuple_strategies(
            xs in crate::collection::vec((0.0f64..1.0, 1u32..5), 2..6),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for &(x, n) in &xs {
                prop_assert!((0.0..1.0).contains(&x), "x out of range: {x}");
                prop_assert!((1..5).contains(&n));
            }
            prop_assert_eq!(u32::from(flag), if flag { 1 } else { 0 });
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(crate::TestRng::deterministic("x").next_u64(), c.next_u64());
    }
}
