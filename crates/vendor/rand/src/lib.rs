//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so this vendored crate
//! implements exactly the API subset the workspace uses: the [`Rng`]
//! trait with the generic `gen::<T>()` method, [`SeedableRng`], and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64). It is *not* the real `rand` crate: distributions,
//! `gen_range`, thread-local RNGs etc. are intentionally absent, and the
//! stream produced for a given seed differs from upstream `StdRng`.
//! Everything in the workspace that cares about determinism seeds
//! explicitly via `ft_stats::rng`, which only relies on the guarantees
//! this crate does provide: pure seeding and a fixed per-seed stream.

/// Types that can be drawn uniformly from an RNG's raw 64-bit output.
///
/// Stand-in for `rand::distributions::Standard` sampling.
pub trait Standard {
    fn from_u64(x: u64) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_u64(x: u64) -> Self {
        x
    }
}

impl Standard for u32 {
    #[inline]
    fn from_u64(x: u64) -> Self {
        (x >> 32) as u32
    }
}

impl Standard for u16 {
    #[inline]
    fn from_u64(x: u64) -> Self {
        (x >> 48) as u16
    }
}

impl Standard for u8 {
    #[inline]
    fn from_u64(x: u64) -> Self {
        (x >> 56) as u8
    }
}

impl Standard for usize {
    #[inline]
    fn from_u64(x: u64) -> Self {
        x as usize
    }
}

impl Standard for bool {
    #[inline]
    fn from_u64(x: u64) -> Self {
        // Use a high bit: low bits of some generators are weaker.
        x >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_u64(x: u64) -> Self {
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_u64(x: u64) -> Self {
        (x >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// The RNG interface: one raw-output method plus the generic `gen`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Draw a uniform value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from simple seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — a small, fast, statistically solid generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; the SplitMix64
            // expansion cannot produce it, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(StdRng::seed_from_u64(1).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_via_mut_ref_and_unsized() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(7);
        let x = draw(&mut r);
        // Exercise the blanket `impl Rng for &mut R`.
        let mut r_ref: &mut StdRng = &mut r;
        let _: u64 = Rng::gen(&mut r_ref);
        assert!((0.0..1.0).contains(&x));
    }
}
