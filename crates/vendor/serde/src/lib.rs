//! Offline stand-in for `serde`.
//!
//! The build container has no network access, so this vendored crate
//! provides the subset the workspace needs: `#[derive(Serialize,
//! Deserialize)]` over a self-describing [`Value`] tree, which
//! `serde_json` (also vendored) renders to and parses from JSON text.
//!
//! The data model is deliberately small — JSON's six shapes, with all
//! numbers as `f64` (every integer this workspace serializes fits
//! losslessly in 53 bits). Non-finite floats serialize as `null` and
//! deserialize back as `NaN`, matching `serde_json`'s lossy behavior.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key–value pairs in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match *self {
            Value::Num(x) => Some(x),
            Value::Null => Some(f64::NAN), // non-finite round-trip
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }
}

/// Look a field up in a serialized map.
pub fn map_get<'v>(map: &'v [(String, Value)], key: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls --------------------------------------------------

// The identity impls, like real `serde_json::Value`'s: lets callers
// serialize hand-built trees and parse into `Value` for inspection.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_num().ok_or_else(|| DeError::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                debug_assert!(x as i128 == *self as i128, "integer exceeds f64 precision");
                Value::Num(x)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_num().ok_or_else(|| DeError::expected("integer"))?;
                if x.fract() != 0.0 || !x.is_finite() {
                    return Err(DeError(format!("expected integer, got {x}")));
                }
                Ok(x as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for &[T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of {N}, got {got} items")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("tuple sequence"))?;
                let expect = [$($i),+].len();
                if s.len() != expect {
                    return Err(DeError(format!("expected {expect}-tuple, got {} items", s.len())));
                }
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (u32, f64) = Deserialize::from_value(&(7u32, 0.5f64).to_value()).unwrap();
        assert_eq!(t, (7, 0.5));
        let o: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn integer_rejects_fraction() {
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn map_get_reports_missing_field() {
        let m = vec![("a".to_string(), Value::Num(1.0))];
        assert!(map_get(&m, "a").is_ok());
        assert!(map_get(&m, "b").unwrap_err().0.contains("missing field"));
    }
}
