//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline). Supports what the workspace actually derives:
//!
//! - structs with named fields, tuple structs, unit structs;
//! - enums with unit, named-field and tuple variants (externally tagged,
//!   like real serde: `"Variant"` / `{"Variant": {...}}` / `{"Variant": [...]}`);
//! - no generic parameters (a `compile_error!` names the offender).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip leading `#[...]` attributes (incl. doc comments) in a token list.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip an optional `pub` / `pub(...)` visibility.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a comma-separated token list at top level (commas inside `<...>`
/// count as nested; bracketed groups are opaque tokens already).
fn split_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse `{ field: Ty, ... }` contents into field names.
fn parse_named_fields(toks: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_commas(toks) {
        let mut i = skip_attrs(&field, 0);
        i = skip_vis(&field, i);
        match field.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("unsupported field syntax near {other:?}")),
        }
        match field.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
    }
    Ok(names)
}

fn parse_variant(toks: &[TokenTree]) -> Result<Variant, String> {
    let i = skip_attrs(toks, 0);
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("unsupported variant syntax near {other:?}")),
    };
    let fields = match toks.get(i + 1) {
        None => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Named(parse_named_fields(&inner)?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(split_commas(&inner).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            return Err(format!("discriminant on variant `{name}` is unsupported"))
        }
        other => {
            return Err(format!(
                "unsupported tokens after variant `{name}`: {other:?}"
            ))
        }
    };
    Ok(Variant { name, fields })
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match toks.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.get(i + 2) {
        if p.as_char() == '<' {
            return Err(format!("generic parameters on `{name}` are unsupported"));
        }
    }
    match (kind.as_str(), toks.get(i + 2)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(&inner)?),
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::Struct {
                name,
                fields: Fields::Tuple(split_commas(&inner).len()),
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Ok(Item::Struct {
            name,
            fields: Fields::Unit,
        }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_commas(&inner)
                .iter()
                .filter(|v| !v.is_empty())
                .map(|v| parse_variant(v))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Item::Enum { name, variants })
        }
        (k, other) => Err(format!("unsupported item: {k} followed by {other:?}")),
    }
}

// ---- Serialize --------------------------------------------------------

fn ser_named(fields: &[String], access_prefix: &str) -> String {
    let mut s = String::from("{ let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        s.push_str(&format!(
            "m.push((\"{f}\".to_string(), ::serde::Serialize::to_value({access_prefix}{f})));\n"
        ));
    }
    s.push_str("::serde::Value::Map(m) }");
    s
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let body = match &item {
        Item::Struct {
            fields: Fields::Named(fs),
            ..
        } => ser_named(fs, "&self."),
        Item::Struct {
            fields: Fields::Tuple(n),
            ..
        } => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Item::Struct {
            fields: Fields::Unit,
            ..
        } => "::serde::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let inner = ser_named(fs, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => \
                             ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .unwrap()
}

// ---- Deserialize ------------------------------------------------------

fn de_named(type_path: &str, fields: &[String], map_expr: &str) -> String {
    let mut s = format!("Ok({type_path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::map_get({map_expr}, \"{f}\")?)?,\n"
        ));
    }
    s.push_str("})");
    s
}

fn de_tuple(type_path: &str, n: usize, seq_expr: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{seq_expr}[{i}])?"))
        .collect();
    format!(
        "if {seq_expr}.len() != {n} {{\n\
         return Err(::serde::DeError(format!(\"expected {n} elements, got {{}}\", {seq_expr}.len())));\n\
         }}\nOk({type_path}({}))",
        items.join(", ")
    )
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let body = match &item {
        Item::Struct { name, fields: Fields::Named(fs) } => format!(
            "let m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map for {name}\"))?;\n{}",
            de_named(name, fs, "m")
        ),
        Item::Struct { name, fields: Fields::Tuple(n) } => format!(
            "let s = v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence for {name}\"))?;\n{}",
            de_tuple(name, *n, "s")
        ),
        Item::Struct { name, fields: Fields::Unit } => format!("let _ = v; Ok({name})"),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    Fields::Named(fs) => {
                        let path = format!("{name}::{vn}");
                        let inner = de_named(&path, fs, "fm");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet fm = inner.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map for variant {vn}\"))?;\n{inner}\n}}\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let path = format!("{name}::{vn}");
                        let inner = de_tuple(&path, *n, "s");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet s = inner.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"sequence for variant {vn}\"))?;\n{inner}\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(tag) = v.as_str() {{\nmatch tag {{\n{unit_arms}\
                 other => return Err(::serde::DeError(format!(\"unknown variant {{other}} for {name}\"))),\n}}\n}}\n\
                 let m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map for {name}\"))?;\n\
                 if m.len() != 1 {{\n\
                 return Err(::serde::DeError::expected(\"single-key variant map for {name}\"));\n}}\n\
                 let (tag, inner) = (&m[0].0, &m[0].1);\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(::serde::DeError(format!(\"unknown variant {{other}} for {name}\"))),\n}}"
            )
        }
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}"
    )
    .parse()
    .unwrap()
}
