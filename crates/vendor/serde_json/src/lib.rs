//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree to JSON text and parses it back.
//!
//! Numbers are `f64` (printed with Rust's shortest-round-trip `Display`),
//! non-finite floats serialize as `null` like real `serde_json`.

use serde::{DeError, Deserialize, Serialize, Value};

pub type Error = DeError;
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| DeError("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        c => {
                            return Err(DeError(format!(
                                "expected `,` or `]`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        c => {
                            return Err(DeError(format!(
                                "expected `,` or `}}`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(DeError(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| DeError("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| DeError("unterminated escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| DeError("bad \\u escape".into()))?;
                            self.pos += 4;
                            // No surrogate-pair support: the writer never
                            // emits \u beyond control characters.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError("invalid \\u code point".into()))?,
                            );
                        }
                        other => return Err(DeError(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| DeError("truncated UTF-8".into()))?;
                    let s =
                        std::str::from_utf8(slice).map_err(|_| DeError("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(DeError(format!("expected value at byte {start}")));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| DeError(format!("invalid number `{s}`")))
    }
}

fn utf8_len(first: u8) -> Result<usize> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(DeError("invalid UTF-8 start byte".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![Value::Num(1.0), Value::Num(2.5)]),
            ),
            ("b".into(), Value::Str("hi \"there\"\n".into())),
            ("c".into(), Value::Bool(false)),
            ("d".into(), Value::Null),
        ]);
        let text = {
            let mut s = String::new();
            super::write_value(&v, &mut s);
            s
        };
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 12.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u32, 0.5f64), (2, 1.5)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        let text = to_string(&f64::INFINITY).unwrap();
        assert_eq!(text, "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let s = "λ → ε ≤ 10⁻⁹".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
