//! An entity-resolution labeling campaign with a fixed budget: find the
//! latency-optimal static price split (Algorithm 3), cross-check it
//! against the exact pseudo-polynomial DP (Theorem 6), and simulate the
//! completion-time distribution (the paper's Fig. 11).
//!
//! Run with: `cargo run --release --example budget_campaign`

use finish_them::market::tracker::weekly_average_rate;
use finish_them::prelude::*;
use finish_them::sim::experiments::fig11_budget::sample_completion_hours;
use finish_them::stats::Summary;

fn main() {
    let mut rng = seeded_rng(11);
    let trace = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
    let rate = weekly_average_rate(&trace);

    // 200 photo pairs to label, 2500 cents total budget (the Section 5.3
    // configuration).
    let acceptance = LogitAcceptance::paper_eq13();
    let problem = BudgetProblem::new(
        200,
        2500.0,
        ActionSet::from_grid(PriceGrid::new(1, 40), &acceptance),
        rate.mean_rate(0.0, 168.0),
    );

    // Algorithm 3: two hull prices around B/N.
    let hull = solve_budget_hull(&problem).expect("feasible budget");
    println!("Budget per task: {:.1} cents", problem.budget_per_task());
    println!(
        "Hull strategy: {:?} → E[W] = {:.0} arrivals, E[T] = {:.1} hours \
         (LP bound {:.0}, rounding gap ≤ {:.1})",
        hull.strategy.counts(),
        hull.expected_arrivals,
        hull.expected_hours,
        hull.lp_lower_bound,
        hull.rounding_gap_bound
    );

    // Theorem 6 exact DP for comparison.
    let exact = solve_budget_exact(&problem).expect("feasible budget");
    let exact_arrivals = exact.expected_arrivals(|c| acceptance.p(c));
    println!(
        "Exact DP strategy: {:?} → E[W] = {:.0} arrivals ({:.2}% better)",
        exact.counts(),
        exact_arrivals,
        (hull.expected_arrivals / exact_arrivals - 1.0) * 100.0
    );

    // Simulate the completion-time distribution (Fig. 11).
    let seq = hull.strategy.price_sequence();
    let mut summary = Summary::new();
    let mut histogram = [0u32; 48];
    for _ in 0..2000 {
        if let Some(t) = sample_completion_hours(&seq, &acceptance, &rate, &mut rng) {
            summary.push(t);
            let bin = (t.floor() as usize).min(47);
            histogram[bin] += 1;
        }
    }
    println!(
        "\nSimulated completion time: mean {:.1} h, min {:.1}, max {:.1}",
        summary.mean(),
        summary.min(),
        summary.max()
    );
    println!("Distribution (hours → trials):");
    for (h, &count) in histogram.iter().enumerate() {
        if count > 0 {
            println!("  {h:>3}h  {}", "#".repeat((count as usize / 8).max(1)));
        }
    }
    println!(
        "\nNote: the static strategy minimizes E[T] but gives no upper-bound \
         guarantee (Section 5.3) — the spread above is irreducible."
    );
}
