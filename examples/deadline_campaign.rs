//! A content-moderation campaign with a hard deadline, priced dynamically
//! against a realistic weekly-periodic marketplace, with live repricing
//! simulated by Monte Carlo — including what happens when the market model
//! is wrong.
//!
//! Run with: `cargo run --release --example deadline_campaign`

use finish_them::core::calibrate_penalty;
use finish_them::market::tracker::weekly_average_rate;
use finish_them::prelude::*;
use finish_them::sim::{run_mc, Aggregate, McConfig, TrueModel};

fn main() {
    // 1. Train the arrival model from four weeks of (synthetic) tracker
    //    history.
    let mut rng = seeded_rng(7);
    let trace = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
    let trained = weekly_average_rate(&trace);
    println!(
        "Trained weekly arrival profile: {:.0} workers/hour on average",
        trained.mean_rate(0.0, 168.0)
    );

    // 2. Build the deadline problem: 300 moderation tasks in 12 hours.
    //    The price grid extends to 60¢ so the policy has escalation
    //    headroom if the market turns out worse than trained.
    let acceptance = LogitAcceptance::paper_eq13();
    let problem = DeadlineProblem::from_market(
        300,
        12.0,
        36,
        &trained,
        PriceGrid::new(0, 60),
        &acceptance,
        PenaltyModel::Linear { per_task: 100.0 },
    );

    // 3. Calibrate the penalty so at most 0.5 tasks are expected to miss
    //    the deadline (Theorem 2).
    let cal = calibrate_penalty(&problem, 0.5, CalibrateOptions::default())
        .expect("calibration feasible");
    println!(
        "Calibrated penalty: {:.0} cents/task → expected cost {:.0} cents, \
         E[remaining] = {:.3}",
        cal.penalty_per_task, cal.outcome.expected_paid, cal.outcome.expected_remaining
    );

    // 4. Monte-Carlo the campaign under the trained model…
    let arrivals = problem.interval_arrivals.clone();
    let model = TrueModel {
        interval_arrivals: &arrivals,
        accept: |c: f64| acceptance.p_f64(c),
        horizon_hours: 12.0,
    };
    let trials = run_mc(&cal.policy, &model, 300, McConfig::default());
    let agg = Aggregate::from_trials(&trials);
    println!(
        "\nSimulated (model correct): finish rate {:.1}%, mean cost {:.0}±{:.0} cents, \
         avg reward {:.2}",
        agg.finish_rate * 100.0,
        agg.mean_paid,
        agg.paid_ci95,
        agg.avg_reward
    );

    // 5. …and under a pessimistic truth: the task is less attractive than
    //    history suggested (b shifted by +0.3) and arrivals run 15% low.
    let adverse_acceptance = LogitAcceptance::new(15.0, -0.39 + 0.3, 2000.0);
    let adverse_arrivals: Vec<f64> = arrivals.iter().map(|l| l * 0.85).collect();
    let adverse = TrueModel {
        interval_arrivals: &adverse_arrivals,
        accept: |c: f64| adverse_acceptance.p_f64(c),
        horizon_hours: 12.0,
    };
    let trials = run_mc(&cal.policy, &adverse, 300, McConfig::default());
    let agg = Aggregate::from_trials(&trials);
    println!(
        "Simulated (adverse truth): finish rate {:.1}%, mean cost {:.0} cents, \
         mean remaining {:.2} — the policy escalates prices automatically",
        agg.finish_rate * 100.0,
        agg.mean_paid,
        agg.mean_remaining
    );

    // 6. The fixed-price baseline under the same adverse truth.
    let fixed =
        solve_fixed_price(&problem.actions, arrivals.iter().sum(), 300, 0.999).expect("feasible");
    let trials = run_mc(
        &FixedPrice(fixed.reward),
        &adverse,
        300,
        McConfig::default(),
    );
    let agg = Aggregate::from_trials(&trials);
    println!(
        "Fixed baseline ({}¢) under adverse truth: finish rate {:.1}%, \
         mean remaining {:.2} — no way to react",
        fixed.reward,
        agg.finish_rate * 100.0,
        agg.mean_remaining
    );
}
