//! The campaign lifecycle over HTTP: start `ft-server` on a local port
//! and drive create → solve → price → observe drift → recalibrate →
//! snapshot → restart with plain HTTP/JSON requests.
//!
//! ```text
//! cargo run --release --example http_server            # self-driving demo
//! cargo run --release --example http_server -- --serve # keep serving on 127.0.0.1:8077
//! ```

use finish_them::core::adaptive::AdaptiveOptions;
use finish_them::core::registry::CampaignRegistry;
use finish_them::core::KernelConfig;
use finish_them::prelude::*;
use ft_server::Server;
use serde::{map_get, Serialize, Value};
use std::net::SocketAddr;
use std::sync::Arc;

/// One blocking HTTP request over a fresh connection, JSON-decoded.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, body) = ft_server::client::request(addr, method, path, body).expect("request");
    let value = serde_json::from_str(&body).expect("json");
    (status, value)
}

fn num(value: &Value, key: &str) -> f64 {
    map_get(value.as_map().expect("object"), key)
        .expect("field")
        .as_num()
        .expect("number")
}

/// Indented span tree: children under their parent, in start order.
fn print_span_tree(spans: &[Value], parent: u64, depth: usize) {
    let mut children: Vec<&Value> = spans
        .iter()
        .filter(|s| num(s, "parent_id") as u64 == parent)
        .collect();
    children.sort_by_key(|s| num(s, "start_ns") as u64);
    for span in children {
        let name = map_get(span.as_map().expect("span object"), "name")
            .expect("name")
            .as_str()
            .expect("string");
        println!(
            "  {:indent$}{name} ({} ns)",
            "",
            num(span, "duration_ns"),
            indent = depth * 2
        );
        print_span_tree(spans, num(span, "span_id") as u64, depth + 1);
    }
}

fn registry() -> Arc<CampaignRegistry> {
    Arc::new(CampaignRegistry::with_config(
        KernelConfig::default(),
        AdaptiveOptions {
            resolve_every: 3,
            ..AdaptiveOptions::default()
        },
    ))
}

fn main() {
    if std::env::args().any(|a| a == "--serve") {
        let (handle, join) = Server::spawn("127.0.0.1:8077", registry()).expect("bind :8077");
        println!(
            "serving campaign API on http://{} (Ctrl-C to stop)",
            handle.addr()
        );
        join.join().expect("server thread");
        return;
    }

    // -- demo mode: spin a server up and walk the whole lifecycle -------
    let store = registry();
    let (handle, join) = Server::spawn("127.0.0.1:0", Arc::clone(&store)).expect("bind");
    let addr = handle.addr();
    println!("ft-server listening on http://{addr}\n");

    let (status, body) = http(addr, "GET", "/healthz", None);
    println!("GET /healthz → {status} {body:?}");
    assert_eq!(status, 200);

    // A 200-task / 24-hour campaign, trained on the paper's marketplace.
    let problem = DeadlineProblem::from_market(
        200,
        24.0,
        72,
        &ConstantRate::new(5100.0),
        PriceGrid::new(0, 40),
        &LogitAcceptance::paper_eq13(),
        PenaltyModel::Linear { per_task: 1000.0 },
    );
    let spec = format!(
        "{{\"kind\":\"deadline\",\"problem\":{},\"eps\":1e-9}}",
        serde_json::to_string(&problem.to_value()).expect("spec json")
    );
    let (status, body) = http(addr, "POST", "/campaigns", Some(&spec));
    let id = num(&body, "id") as u64;
    println!("POST /campaigns → {status} (campaign {id}, draft)");

    let (status, body) = http(addr, "POST", &format!("/campaigns/{id}/solve"), None);
    println!(
        "POST /campaigns/{id}/solve → {status} (generation {})",
        num(&body, "generation")
    );

    let (_, body) = http(
        addr,
        "GET",
        &format!("/campaigns/{id}/price?remaining=200&interval=0"),
        None,
    );
    println!(
        "GET /campaigns/{id}/price?remaining=200&interval=0 → post {} cents (generation {})",
        num(&body, "price"),
        num(&body, "generation")
    );

    // A quiet day (the paper's Jan-1 situation): the policy expects ≈3
    // completions per 20-minute interval at its opening price, but only
    // 1 shows up — ρ̂ falls and the remaining horizon is re-solved with
    // scaled-down arrivals, raising the posted price.
    // Each report is tagged with an `x-ft-trace` id: the server keeps
    // a span tree for tagged requests, so the report that carried the
    // slow re-solve inline can be replayed span by span afterwards.
    let mut client = ft_server::Client::new(addr);
    let mut recalibration_trace = None;
    println!("\nobserving a quiet day (completions ≈ ⅓ of trained):");
    let mut remaining = 200u64;
    for interval in 0..6 {
        let done = 1u64.min(remaining);
        remaining -= done;
        let obs = format!("{{\"interval\":{interval},\"completions\":{done}}}");
        let trace_id = ft_trace::next_trace_id();
        let (_, body, _) = client
            .request_traced(
                "POST",
                &format!("/campaigns/{id}/observations"),
                Some(&obs),
                Some(trace_id),
            )
            .expect("observe");
        let body: Value = serde_json::from_str(&body).expect("json");
        let recalibrated =
            map_get(body.as_map().unwrap(), "recalibrated").is_ok_and(|v| *v == Value::Bool(true));
        if recalibrated {
            recalibration_trace.get_or_insert(trace_id);
        }
        println!(
            "  interval {interval}: {done} done → ρ̂ = {:.2}, generation {}{}",
            num(&body, "correction"),
            num(&body, "generation"),
            if recalibrated {
                "  ← recalibrated"
            } else {
                ""
            }
        );
    }

    // Fetch the slow request's own trace: socket → reactor queue →
    // registry → engine → solver kernel → executor, as one span tree.
    let trace_id = recalibration_trace.expect("drift must trigger a recalibration");
    let (status, trace) = http(addr, "GET", &format!("/trace/{trace_id:016x}"), None);
    assert_eq!(status, 200);
    println!(
        "\nGET /trace/{trace_id:016x} → the recalibrating report, span by span ({} ns):",
        num(&trace, "duration_ns")
    );
    let spans = map_get(trace.as_map().unwrap(), "spans")
        .expect("spans")
        .as_seq()
        .expect("array");
    print_span_tree(spans, 0, 0);

    let probe = format!("/campaigns/{id}/price?remaining={}&interval=6", remaining);
    let (_, body) = http(addr, "GET", &probe, None);
    let price = num(&body, "price");
    let generation = num(&body, "generation");
    println!("\nGET {probe} → post {price} cents (generation {generation})");

    // The batched quote API: N quotes in one round trip, over the same
    // keep-alive connection. Per-campaign failures ride inline
    // (campaign 999 doesn't exist) instead of sinking the batch.
    let batch = format!(
        "{{\"quotes\":[\
         {{\"id\":{id},\"remaining\":{remaining},\"interval\":6}},\
         {{\"id\":{id},\"remaining\":100,\"interval\":40}},\
         {{\"id\":999,\"remaining\":1,\"interval\":0}}\
         ]}}"
    );
    let (status, body) = client
        .request("POST", "/campaigns/quotes", Some(&batch))
        .expect("bulk quote");
    let body: Value = serde_json::from_str(&body).expect("json");
    assert_eq!(status, 200);
    let results = map_get(body.as_map().unwrap(), "results")
        .expect("results")
        .as_seq()
        .expect("array");
    println!(
        "\nPOST /campaigns/quotes ({} items, one round trip) → {status}",
        num(&body, "count")
    );
    for item in results {
        let item_map = item.as_map().expect("object");
        match map_get(item_map, "price") {
            Ok(price) => println!(
                "  campaign {}: post {} cents",
                num(item, "id"),
                price.as_num().expect("number")
            ),
            Err(_) => println!(
                "  campaign {}: {} (HTTP {})",
                num(item, "id"),
                map_get(item_map, "error").expect("error").as_str().unwrap(),
                num(item, "status")
            ),
        }
    }
    assert_eq!(num(&results[0], "price"), price, "bulk matches single");

    // The fleet index and the observability plane see all of the above.
    let (_, body) = http(addr, "GET", "/campaigns?limit=10", None);
    println!(
        "GET /campaigns?limit=10 → {} of {} campaigns",
        num(&body, "returned"),
        num(&body, "total")
    );
    let (_, metrics) = http(addr, "GET", "/metrics", None);
    println!(
        "GET /metrics → quotes={} observations={} recalibrations={} generation_swaps={}",
        num(&metrics, "ft_core_quotes_total"),
        num(&metrics, "ft_core_observes_total"),
        num(&metrics, "ft_core_recalibrations_total"),
        num(&metrics, "ft_core_generation_swaps_total"),
    );
    assert!(num(&metrics, "ft_core_quotes_total") >= 2.0);

    // Snapshot, restart, and show the campaign resume at the same
    // recalibrated generation.
    let snapshot = std::env::temp_dir().join("ft-server-demo-snapshot.json");
    store.save(&snapshot).expect("save snapshot");
    handle.shutdown();
    join.join().expect("server thread");
    println!("\nsnapshot saved to {} — restarting…", snapshot.display());

    let restored = Arc::new(
        CampaignRegistry::load(
            &snapshot,
            KernelConfig::default(),
            AdaptiveOptions::default(),
        )
        .expect("load snapshot"),
    );
    std::fs::remove_file(&snapshot).ok();
    let (handle, join) = Server::spawn("127.0.0.1:0", restored).expect("rebind");
    let addr = handle.addr();
    let (_, body) = http(addr, "GET", &probe, None);
    assert_eq!(num(&body, "price"), price, "price must survive the restart");
    assert_eq!(num(&body, "generation"), generation);
    println!(
        "after restart: GET {probe} → post {} cents (generation {}) — campaign resumed",
        num(&body, "price"),
        num(&body, "generation")
    );

    let (status, _) = http(addr, "DELETE", &format!("/campaigns/{id}"), None);
    println!("DELETE /campaigns/{id} → {status}");
    handle.shutdown();
    join.join().expect("server thread");
    println!("done.");
}
