//! The Section 5.4 live deployment, end to end: calibrate grouping-size
//! acceptance from fixed trials on the event-driven marketplace simulator,
//! build the MDP-backed grouping controller, and race it against the fixed
//! strategies.
//!
//! Run with: `cargo run --release --example live_repricing`

use finish_them::market::sim::{run_live_sim, FixedGroup, LiveSimConfig};
use finish_them::sim::experiments::fig12_live::{
    build_controller, estimate_unit_rate, live_arrival_rate, GROUP_SIZES,
};
use finish_them::stats::rng::stream_rng;

fn main() {
    let config = LiveSimConfig::default(); // 5000 tasks, 14h, 2¢ HITs
    let arrival = live_arrival_rate(1.0);
    let bound = 6000.0 * 1.3;

    // Phase 1: fixed-group trials (the paper's five calibration days).
    println!("Fixed grouping trials (5000 tasks, 14h deadline):");
    let mut outcomes = Vec::new();
    for (i, &g) in GROUP_SIZES.iter().enumerate() {
        let mut rng = stream_rng(99, i as u64);
        let out = run_live_sim(&config, &arrival, bound, &mut FixedGroup(g), &mut rng);
        println!(
            "  group {g:>2}: {:>4} tasks by 6h, {:>4} by 14h, cost ${:.2}{}",
            out.tasks_completed_by(6.0),
            out.tasks_completed,
            out.cost_cents as f64 / 100.0,
            out.finish_time_hours
                .map_or(String::new(), |t| format!(", finished at {t:.1}h")),
        );
        outcomes.push((g, out));
    }

    // Phase 2: estimate per-group effective rates → dynamic controller.
    let unit_rates: Vec<(u32, f64)> = outcomes
        .iter()
        .map(|(g, out)| (*g, estimate_unit_rate(out, config.horizon_hours)))
        .collect();
    println!("\nEstimated unit completion rates (per worker arrival):");
    for &(g, r) in &unit_rates {
        println!("  group {g:>2}: {r:.5}");
    }

    let mut controller =
        build_controller(&unit_rates, &arrival, &config).expect("controller feasible");

    // Phase 3: dynamic trials.
    println!("\nDynamic grouping trials:");
    for trial in 0..5 {
        let mut rng = stream_rng(199, trial);
        let out = run_live_sim(&config, &arrival, bound, &mut controller, &mut rng);
        println!(
            "  trial {}: {:>4}/{} tasks, cost ${:.2}{}",
            trial + 1,
            out.tasks_completed,
            config.total_tasks,
            out.cost_cents as f64 / 100.0,
            out.finish_time_hours
                .map_or(" (unfinished)".into(), |t| format!(", finished at {t:.1}h")),
        );
    }
    println!(
        "\nFixed group-20 costs ${:.2}; the dynamic controller leans on \
         cheap large groups and escalates only when behind schedule.",
        config.total_tasks as f64 / 20.0 * config.hit_price_cents as f64 / 100.0
    );
}
