//! Section 6 "multiple task types": one deadline, two heterogeneous
//! sub-batches (categorization + data collection) priced jointly.
//!
//! With linear penalties the joint MDP decomposes exactly into independent
//! per-type MDPs; with a joint "anything left at all is bad" penalty it
//! does not — this example shows both.
//!
//! Run with: `cargo run --release --example multi_type`

use finish_them::core::extensions::{
    solve_decomposed, solve_multi_type, MultiTypeProblem, TaskTypeSpec,
};
use finish_them::prelude::*;

fn main() {
    // Two task types with different acceptance curves: categorization is
    // less attractive per cent than data collection (Table 2's biases).
    let categorization = LogitAcceptance::new(15.0, 0.2, 2000.0);
    let data_collection = LogitAcceptance::paper_eq13();
    let grid = PriceGrid::new(0, 30);

    let problem = MultiTypeProblem {
        types: vec![
            TaskTypeSpec {
                n_tasks: 8,
                actions: ActionSet::from_grid(grid, &categorization),
            },
            TaskTypeSpec {
                n_tasks: 12,
                actions: ActionSet::from_grid(grid, &data_collection),
            },
        ],
        interval_arrivals: vec![1700.0; 12], // 4 hours of 20-min intervals
        penalty_per_task: 300.0,
        joint_alpha: 0.0,
    };

    let joint = solve_multi_type(&problem).expect("solvable");
    let decomposed = solve_decomposed(&problem).expect("linear penalty decomposes");
    println!(
        "Linear penalty: joint MDP cost {:.2}¢, decomposed cost {:.2}¢ (must agree)",
        joint.expected_total_cost(),
        decomposed
    );

    let early = joint.prices(&[8, 12], 0);
    let late = joint.prices(&[8, 12], problem.interval_arrivals.len() - 1);
    println!(
        "Full-batch prices per type: opening ({}¢, {}¢) → final interval ({}¢, {}¢)",
        early[0], early[1], late[0], late[1]
    );

    // Now couple the types: a fixed extra penalty if *anything* remains.
    let coupled = MultiTypeProblem {
        joint_alpha: 10.0,
        ..problem.clone()
    };
    let coupled_policy = solve_multi_type(&coupled).expect("solvable");
    println!(
        "\nJoint-alpha penalty (10 tasks' worth if anything remains):\n\
         cost rises from {:.2}¢ to {:.2}¢ and the problem no longer decomposes",
        joint.expected_total_cost(),
        coupled_policy.expected_total_cost()
    );

    // Show how the coupled policy reacts when one type lags: with one
    // categorization task left late, its price escalates harder than the
    // decomposed policy would.
    let late = coupled.interval_arrivals.len() - 2;
    let lagging = coupled_policy.prices(&[1, 0], late);
    let comfortable = coupled_policy.prices(&[1, 0], 0);
    println!(
        "Last categorization task: {}¢ early vs {}¢ two intervals before the deadline",
        comfortable[0], lagging[0]
    );
}
