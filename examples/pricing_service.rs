//! The multi-campaign pricing service: solve a heterogeneous batch of
//! campaigns concurrently, then serve reprice queries from the cache.
//!
//! ```text
//! cargo run --release --example pricing_service
//! ```

use finish_them::core::{CampaignSpec, ObservedState, PricingService};
use finish_them::prelude::*;

fn main() {
    let service = PricingService::new();

    // Three deadline campaigns of different sizes/horizons plus one
    // fixed-budget campaign, submitted as one batch.
    let acc = LogitAcceptance::paper_eq13();
    let mut batch = Vec::new();
    for (id, (n_tasks, hours)) in [(200u32, 24.0f64), (500, 12.0), (1000, 48.0)]
        .into_iter()
        .enumerate()
    {
        let problem = DeadlineProblem::from_market(
            n_tasks,
            hours,
            (hours * 3.0) as usize,
            &ConstantRate::new(5100.0),
            PriceGrid::new(0, 40),
            &acc,
            PenaltyModel::Linear { per_task: 1000.0 },
        );
        batch.push((id as u64, CampaignSpec::Deadline { problem, eps: None }));
    }
    batch.push((
        99,
        CampaignSpec::Budget {
            problem: BudgetProblem::new(
                200,
                2500.0,
                ActionSet::from_grid(PriceGrid::new(1, 40), &acc),
                5100.0,
            ),
        },
    ));

    let t0 = std::time::Instant::now();
    let results = service.solve_batch(batch);
    println!(
        "solved {} campaigns in {:.1} ms ({} cached)\n",
        results.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        service.len()
    );

    // Reprice some live states: on plan, behind plan, and a budget
    // campaign that has overspent its plan.
    println!("campaign 0 (200 tasks / 24 h): deadline repricing");
    for (remaining, interval) in [(200u32, 0usize), (150, 24), (150, 60), (10, 70)] {
        let price = service
            .reprice(
                0,
                ObservedState::Deadline {
                    remaining,
                    interval,
                },
            )
            .unwrap();
        println!("  {remaining:>4} tasks left at interval {interval:>2} → post {price:>2} cents");
    }

    println!("campaign 99 (200 tasks / 2500 cents): budget repricing");
    for (remaining, cents) in [(200u32, 2500usize), (100, 1100), (40, 420), (10, 500)] {
        let price = service
            .reprice(
                99,
                ObservedState::Budget {
                    remaining,
                    budget_cents: cents,
                },
            )
            .unwrap();
        println!("  {remaining:>4} tasks left, {cents:>4}¢ unspent → post {price:>2} cents");
    }

    // The hot path is a table lookup; time it.
    let t0 = std::time::Instant::now();
    let queries = 1_000_000u32;
    let mut acc_price = 0.0;
    for i in 0..queries {
        acc_price += service
            .reprice(
                0,
                ObservedState::Deadline {
                    remaining: 1 + i % 200,
                    interval: (i % 72) as usize,
                },
            )
            .unwrap();
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "\nreprice hot path: {queries} queries in {:.0} ms ({:.0} ns/query, checksum {acc_price:.0})",
        dt * 1e3,
        dt / queries as f64 * 1e9
    );
}
