//! Quickstart: solve a deadline-constrained pricing problem and inspect
//! the resulting dynamic price schedule.
//!
//! Run with: `cargo run --release --example quickstart`

use finish_them::prelude::*;

fn main() {
    // 200 identical tasks, due in 24 hours, on a marketplace seeing
    // ~5100 worker arrivals per hour, with the paper's Eq. 13 acceptance
    // function p(c) = exp(c/15 + 0.39) / (exp(c/15 + 0.39) + 2000).
    let problem = DeadlineProblem::from_market(
        200,
        24.0,
        72, // 20-minute repricing intervals
        &ConstantRate::new(5100.0),
        PriceGrid::new(0, 40),
        &LogitAcceptance::paper_eq13(),
        PenaltyModel::Linear { per_task: 500.0 },
    );

    // Solve with the efficient (Algorithm 2) solver.
    let policy = solve_efficient(&problem, 1e-9).expect("solvable problem");

    println!(
        "Expected total cost: {:.1} cents",
        policy.expected_total_cost()
    );
    let outcome = policy.evaluate(&problem);
    println!(
        "Expected completion: {:.2}/{} tasks ({:.2} expected remaining)",
        outcome.expected_completed, 200, outcome.expected_remaining
    );
    println!(
        "Average reward per completed task: {:.2} cents",
        outcome.average_reward()
    );

    // The price schedule: how the posted reward varies with progress.
    println!("\nPrice schedule (cents) — rows: remaining tasks; cols: hour");
    print!("{:>10}", "remaining");
    for hour in [0usize, 6, 12, 18, 23] {
        print!("{:>7}h{hour}", "");
    }
    println!();
    for &n in &[200u32, 150, 100, 50, 20, 5] {
        print!("{n:>10}");
        for hour in [0usize, 6, 12, 18, 23] {
            let t = hour * 3; // 3 intervals per hour
            print!("{:>9.0}", policy.price(n, t));
        }
        println!();
    }

    // Compare with the fixed-price baseline (Faridani et al.).
    let actions = ActionSet::from_grid(PriceGrid::new(0, 40), &LogitAcceptance::paper_eq13());
    let fixed = solve_fixed_price(&actions, 5100.0 * 24.0, 200, 0.999).expect("feasible");
    println!(
        "\nFixed-price baseline: {} cents/task → total {} cents \
         (dynamic saves {:.0}%)",
        fixed.reward,
        fixed.total_cost,
        (1.0 - outcome.expected_paid / fixed.total_cost) * 100.0
    );
}
