//! Section 6 extensions in action: (a) the cost/latency tradeoff when
//! neither a deadline nor a budget is fixed, and (b) quality-controlled
//! filtering tasks priced through the worst-case-questions reduction.
//!
//! Run with: `cargo run --release --example tradeoff`

use finish_them::core::extensions::{
    solve_tradeoff_fixed_rate, solve_tradeoff_worker_arrival, MajorityVoteQc, QcPricingSession,
};
use finish_them::core::solve_truncated;
use finish_them::prelude::*;
use rand::Rng;

fn main() {
    let acceptance = LogitAcceptance::paper_eq13();
    let actions = ActionSet::from_grid(PriceGrid::new(1, 40), &acceptance);

    // (a) Cost + α·latency: sweep the impatience knob.
    println!("Cost/latency tradeoff (worker-arrival formulation, λ̄ = 5100/h):");
    println!(
        "{:>12} {:>12} {:>16}",
        "alpha(¢/h)", "price(¢)", "objective/task"
    );
    for alpha in [0.0, 50.0, 200.0, 1000.0, 5000.0, 20000.0] {
        let policy = solve_tradeoff_worker_arrival(&actions, 100, 5100.0, alpha).expect("solvable");
        println!(
            "{alpha:>12} {:>12} {:>16.2}",
            policy.price(1),
            policy.total() / 100.0
        );
    }
    println!("→ more impatience (higher α) buys faster completion with higher prices.\n");

    // The fixed-rate variant for a slotted marketplace.
    let fixed_rate = solve_tradeoff_fixed_rate(&actions, 100, 120.0, 200.0).expect("solvable");
    println!(
        "Fixed-rate formulation (λ = 120/interval, α = 200): price {}¢/task\n",
        fixed_rate.price(1)
    );

    // (b) Quality control: 40 filtering items, majority-of-3 voting, so up
    // to N' = 120 questions in the worst case, due in 8 hours.
    let qc = MajorityVoteQc::new(3);
    let n_items = 40usize;
    let n_prime = n_items as u32 * qc.worst_case_questions(0, 0);
    let problem = DeadlineProblem::from_market(
        n_prime,
        8.0,
        24,
        &ConstantRate::new(5100.0),
        PriceGrid::new(0, 40),
        &acceptance,
        PenaltyModel::Linear { per_task: 300.0 },
    );
    let policy = solve_truncated(&problem, 1e-9).expect("solvable");
    let mut session = QcPricingSession::new(qc, policy, n_items);

    println!(
        "QC-priced filtering: {} items × majority-of-3 → N' = {} worst-case questions",
        n_items, n_prime
    );
    println!("Initial price: {}¢/question", session.price(0));

    // Simulate answers arriving (workers are 85% accurate; items are 50/50
    // positives) and watch the state collapse.
    let mut rng = seeded_rng(3);
    let truths: Vec<bool> = (0..n_items).map(|_| rng.gen::<f64>() < 0.5).collect();
    let mut questions_asked = 0u32;
    let mut correct_verdicts = 0u32;
    let mut decided = 0u32;
    while let Some(item) = session.next_undecided() {
        let answer = if rng.gen::<f64>() < 0.85 {
            truths[item]
        } else {
            !truths[item]
        };
        questions_asked += 1;
        if let Some(verdict) = session.record_answer(item, answer) {
            decided += 1;
            if verdict == truths[item] {
                correct_verdicts += 1;
            }
        }
    }
    println!(
        "Asked {questions_asked} questions (worst case {n_prime}); \
         {correct_verdicts}/{decided} verdicts correct"
    );
    println!(
        "Final worst-case remaining: {} questions → price now {}¢",
        session.remaining_questions(),
        session.price(12)
    );
}
