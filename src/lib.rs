//! # finish-them
//!
//! A Rust implementation of *"Finish Them!: Pricing Algorithms for Human
//! Computation"* (Yihan Gao & Aditya Parameswaran, VLDB 2014 /
//! arXiv:1408.6292): algorithms that set and dynamically vary the price of
//! a batch of crowdsourcing tasks to
//!
//! - meet a **deadline** at minimum expected cost (an MDP solved by
//!   backward induction with Poisson-tail truncation and a
//!   monotonicity-exploiting divide-and-conquer), or
//! - meet a **budget** at minimum expected latency (a two-price static
//!   strategy read off the lower convex hull of `(c, 1/p(c))`).
//!
//! ## Quickstart
//!
//! ```
//! use finish_them::prelude::*;
//!
//! // Marketplace model: constant 5100 workers/hour, the paper's Eq. 13
//! // acceptance function, 200 tasks due in 24 hours.
//! let problem = DeadlineProblem::from_market(
//!     200,
//!     24.0,
//!     72,
//!     &ConstantRate::new(5100.0),
//!     PriceGrid::new(0, 40),
//!     &LogitAcceptance::paper_eq13(),
//!     PenaltyModel::Linear { per_task: 500.0 },
//! );
//! let policy = solve_efficient(&problem, 1e-9).unwrap();
//! let outcome = policy.evaluate(&problem);
//! assert!(outcome.expected_remaining < 1.0);
//! // Post prices with policy.price(remaining_tasks, interval_index).
//! let first_price = policy.price(200, 0);
//! assert!(first_price >= 8.0 && first_price <= 20.0);
//! ```
//!
//! ## Serving campaigns
//!
//! Beyond one-shot solves, campaigns are first-class lifecycle objects:
//! register a [`core::registry::CampaignRegistry`] campaign, solve it,
//! feed it per-interval completion observations (drifting campaigns are
//! re-solved on their remaining horizon and atomically swapped to a new
//! policy generation), snapshot the registry to JSON, and serve it all
//! over HTTP with the `ft-server` crate ([`server`]):
//!
//! ```text
//! cargo run --release --example http_server            # lifecycle walkthrough
//! cargo run --release --example http_server -- --serve # listen on 127.0.0.1:8077
//! ```
//!
//! See `examples/http_server.rs` and ARCHITECTURE.md for the endpoint
//! table and the snapshot format.
//!
//! Under load, the stack watches itself: the `ft-metrics` plane
//! ([`metrics`]) counts quotes/observes/solves/recalibrations and
//! histograms latencies lock-free, `GET /metrics` exports it all
//! (JSON or Prometheus text), and the `ft-load` crate drives the
//! whole serving path closed-loop — simulated worker populations
//! responding to live prices over real sockets:
//!
//! ```text
//! cargo run --release -p ft-load -- --fast   # writes BENCH_load.json
//! ```
//!
//! The workspace crates are re-exported here:
//! [`stats`] (distributions/regression), [`market`] (NHPP arrivals, choice
//! models, tracker traces, live simulator), [`core`] (the pricing
//! algorithms), [`exec`] (the persistent worker pool), [`metrics`] (the
//! observability plane), [`sim`] (the paper's experiments) and
//! [`server`] (the HTTP front-end).

pub use ft_core as core;
pub use ft_exec as exec;
pub use ft_market as market;
pub use ft_metrics as metrics;
pub use ft_server as server;
pub use ft_sim as sim;
pub use ft_stats as stats;

/// The most common imports in one place.
pub mod prelude {
    pub use ft_core::{
        calibrate_penalty, solve_budget_exact, solve_budget_hull, solve_efficient,
        solve_fixed_price, solve_simple, solve_truncated, ActionSet, BudgetProblem,
        CalibrateOptions, DeadlinePolicy, DeadlineProblem, ExactOutcome, FixedPrice, PenaltyModel,
        PriceAction, PriceController, PricingError, StaticStrategy,
    };
    pub use ft_market::{
        AcceptanceFn, ArrivalRate, ConstantRate, LogitAcceptance, PiecewiseConstantRate, PriceGrid,
        TableAcceptance, TrackerConfig, TrackerTrace,
    };
    pub use ft_stats::{seeded_rng, Poisson, Summary};
}
