//! Cross-crate integration tests for the fixed-budget pipeline
//! (Section 4): hull vs exact solvers, latency conversion, and the
//! semi-static sampling law.

use finish_them::core::budget::SemiStaticStrategy;
use finish_them::prelude::*;
use finish_them::stats::Geometric;

fn problem(n: u32, budget: f64) -> BudgetProblem {
    BudgetProblem::new(
        n,
        budget,
        ActionSet::from_grid(PriceGrid::new(1, 40), &LogitAcceptance::paper_eq13()),
        5100.0,
    )
}

fn arrivals_of(_p: &BudgetProblem, s: &StaticStrategy) -> f64 {
    let acc = LogitAcceptance::paper_eq13();
    s.expected_arrivals(|c| acc.p(c))
}

#[test]
fn paper_scale_hull_and_exact_agree_within_gap() {
    let p = problem(200, 2500.0);
    let hull = solve_budget_hull(&p).unwrap();
    let exact = solve_budget_exact(&p).unwrap();
    let e = arrivals_of(&p, &exact);
    assert!(e <= hull.expected_arrivals + 1e-9);
    assert!(hull.expected_arrivals <= e + hull.rounding_gap_bound + 1e-9);
    // Both spend within budget and price every task.
    assert!(hull.strategy.within_budget(2500.0));
    assert!(exact.within_budget(2500.0));
    assert_eq!(hull.strategy.n_tasks(), 200);
    assert_eq!(exact.n_tasks(), 200);
}

#[test]
fn more_budget_means_less_latency() {
    let mut prev = f64::INFINITY;
    for budget in [2000.0, 2400.0, 2800.0, 3600.0, 5000.0] {
        let sol = solve_budget_hull(&problem(200, budget)).unwrap();
        assert!(
            sol.expected_hours <= prev + 1e-9,
            "latency must be non-increasing in budget"
        );
        prev = sol.expected_hours;
    }
}

#[test]
fn paper_expected_latency_ballpark() {
    // Section 5.3: N=200, B=2500¢ completes in roughly a day (paper
    // simulated mean 23.2 h; our trained profile differs slightly).
    let sol = solve_budget_hull(&problem(200, 2500.0)).unwrap();
    assert!(
        (12.0..40.0).contains(&sol.expected_hours),
        "expected hours {}",
        sol.expected_hours
    );
}

#[test]
fn semi_static_reordering_matches_static_strategy() {
    // Build the hull solution, reorder it as a semi-static sequence in a
    // scrambled order, and verify Theorem 5 gives the identical E[W].
    let p = problem(50, 700.0);
    let hull = solve_budget_hull(&p).unwrap();
    let acc = LogitAcceptance::paper_eq13();
    let mut seq = hull.strategy.price_sequence();
    seq.reverse(); // ascending order now — a "bad" posting order
    let semi = SemiStaticStrategy::new(seq);
    assert!(
        (semi.expected_arrivals(|c| acc.p(c)) - hull.expected_arrivals).abs() < 1e-9,
        "Theorem 5: E[W] must be order-invariant"
    );
}

#[test]
fn sampled_semi_static_arrivals_match_theory() {
    let acc = LogitAcceptance::paper_eq13();
    let semi = SemiStaticStrategy::new(vec![12, 12, 13, 13, 14]);
    let expect = semi.expected_arrivals(|c| acc.p(c));
    let mut rng = seeded_rng(9);
    let trials = 3000;
    let mean = (0..trials)
        .map(|_| semi.sample_arrivals(|c| acc.p(c), &mut rng))
        .sum::<u64>() as f64
        / trials as f64;
    assert!(
        (mean - expect).abs() / expect < 0.05,
        "sampled {mean} vs theory {expect}"
    );
}

#[test]
fn geometric_stage_law_matches_acceptance() {
    // Per stage, arrivals-to-pickup is 1 + Geom(p): verify the building
    // block against the acceptance function at the paper's price point.
    let acc = LogitAcceptance::paper_eq13();
    let p12 = acc.p(12);
    let g = Geometric::new(p12);
    assert!((g.mean() + 1.0 - 1.0 / p12).abs() < 1e-9);
}

#[test]
fn strategy_serde_roundtrip() {
    let p = problem(30, 400.0);
    let hull = solve_budget_hull(&p).unwrap();
    let json = serde_json::to_string(&hull).unwrap();
    let back: finish_them::core::budget::HullSolution = serde_json::from_str(&json).unwrap();
    assert_eq!(hull, back);
}

#[test]
fn infeasible_budget_is_an_error_not_a_panic() {
    let p = problem(200, 100.0);
    assert!(matches!(
        solve_budget_hull(&p),
        Err(PricingError::Infeasible(_))
    ));
    assert!(matches!(
        solve_budget_exact(&p),
        Err(PricingError::Infeasible(_))
    ));
}
