//! Cross-crate integration tests for the fixed-deadline pipeline:
//! tracker trace → trained arrival model → MDP solvers → policy
//! execution, plus serialization round-trips.

use finish_them::core::calibrate_penalty;
use finish_them::market::tracker::weekly_average_rate;
use finish_them::prelude::*;
use finish_them::sim::{run_mc, Aggregate, McConfig, TrueModel};

fn trained_problem(n_tasks: u32, hours: f64, max_price: u32) -> DeadlineProblem {
    let mut rng = seeded_rng(42);
    let trace = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
    let rate = weekly_average_rate(&trace).scaled(0.3);
    let n_intervals = (hours * 3.0) as usize;
    DeadlineProblem::from_market(
        n_tasks,
        hours,
        n_intervals,
        &rate,
        PriceGrid::new(0, max_price),
        &LogitAcceptance::paper_eq13(),
        PenaltyModel::Linear { per_task: 200.0 },
    )
}

#[test]
fn all_three_solvers_agree_end_to_end() {
    let problem = trained_problem(25, 4.0, 30);
    let simple = solve_simple(&problem).unwrap();
    let truncated = solve_truncated(&problem, 1e-10).unwrap();
    let efficient = solve_efficient(&problem, 1e-10).unwrap();
    for t in 0..problem.n_intervals() {
        for n in 1..=25u32 {
            assert_eq!(truncated.action_index(n, t), efficient.action_index(n, t));
        }
    }
    let c_simple = simple.expected_total_cost();
    let c_trunc = truncated.expected_total_cost();
    assert!((c_simple - c_trunc).abs() < 1e-6, "{c_simple} vs {c_trunc}");
}

#[test]
fn dp_cost_equals_forward_evaluation_end_to_end() {
    let problem = trained_problem(20, 4.0, 30);
    let policy = solve_simple(&problem).unwrap();
    let out = policy.evaluate(&problem);
    assert!((policy.expected_total_cost() - out.expected_total_cost()).abs() < 1e-7);
}

#[test]
fn monte_carlo_confirms_exact_evaluation() {
    let problem = trained_problem(20, 4.0, 30);
    let cal = calibrate_penalty(&problem, 1.0, CalibrateOptions::default()).unwrap();
    let acceptance = LogitAcceptance::paper_eq13();
    let model = TrueModel {
        interval_arrivals: &problem.interval_arrivals,
        accept: |c: f64| acceptance.p_f64(c),
        horizon_hours: 4.0,
    };
    let trials = run_mc(
        &cal.policy,
        &model,
        20,
        McConfig {
            trials: 3000,
            seed: 5,
            threads: 0,
        },
    );
    let agg = Aggregate::from_trials(&trials);
    // Monte-Carlo means must match the exact forward pass within CI.
    assert!(
        (agg.mean_paid - cal.outcome.expected_paid).abs() < 4.0 * agg.paid_ci95.max(1.0),
        "MC paid {} vs exact {}",
        agg.mean_paid,
        cal.outcome.expected_paid
    );
    assert!(
        (agg.mean_remaining - cal.outcome.expected_remaining).abs() < 0.25,
        "MC remaining {} vs exact {}",
        agg.mean_remaining,
        cal.outcome.expected_remaining
    );
}

#[test]
fn policy_serde_roundtrip() {
    let problem = trained_problem(10, 2.0, 20);
    let policy = solve_truncated(&problem, 1e-9).unwrap();
    let json = serde_json::to_string(&policy).unwrap();
    let back: DeadlinePolicy = serde_json::from_str(&json).unwrap();
    assert_eq!(policy, back);
    assert_eq!(back.price(10, 0), policy.price(10, 0));
}

#[test]
fn problem_serde_roundtrip() {
    let problem = trained_problem(10, 2.0, 20);
    let json = serde_json::to_string(&problem).unwrap();
    let back: DeadlineProblem = serde_json::from_str(&json).unwrap();
    assert_eq!(problem, back);
}

#[test]
fn dynamic_cheaper_than_fixed_at_same_confidence() {
    // The end-to-end headline: dynamic ≤ fixed cost at matched confidence.
    let problem = trained_problem(25, 6.0, 40);
    let cal = calibrate_penalty(&problem, 0.001, CalibrateOptions::default()).unwrap();
    let fixed = solve_fixed_price(&problem.actions, problem.total_arrivals(), 25, 0.999).unwrap();
    assert!(
        cal.outcome.expected_paid <= fixed.total_cost + 1e-9,
        "dynamic {} should not exceed fixed {}",
        cal.outcome.expected_paid,
        fixed.total_cost
    );
}

#[test]
fn price_controller_is_object_safe_and_clamps() {
    let problem = trained_problem(10, 2.0, 20);
    let policy = solve_truncated(&problem, 1e-9).unwrap();
    let controllers: Vec<Box<dyn PriceController>> =
        vec![Box::new(policy.clone()), Box::new(FixedPrice(9.0))];
    for c in &controllers {
        // Out-of-range states must clamp, not panic.
        let p = c.price(10_000, 10_000);
        assert!((0.0..=40.0).contains(&p));
    }
}
