//! Solver-level proof that `ft-exec` is a persistent pool: repeated
//! solves across every solver family reuse parked workers instead of
//! spawning per induction layer, and the pooled results stay identical
//! run over run.
//!
//! One test function on purpose: thread counting via `/proc` is a
//! process-global measurement, so the sequence warms up, measures, and
//! asserts without other tests churning threads in this binary.

use finish_them::core::budget::{solve_budget_exact, solve_budget_mdp};
use finish_them::core::dp::{solve_efficient, solve_simple, solve_truncated};
use finish_them::core::{ActionSet, BudgetProblem, DeadlineProblem, PenaltyModel};
use finish_them::exec::process_threads as thread_count;
use finish_them::market::{ConstantRate, LogitAcceptance, PriceGrid};

fn deadline_problem() -> DeadlineProblem {
    DeadlineProblem::from_market(
        60,
        4.0,
        8,
        &ConstantRate::new(300.0),
        PriceGrid::new(0, 20),
        &LogitAcceptance::new(4.0, 0.0, 30.0),
        PenaltyModel::Linear { per_task: 500.0 },
    )
}

fn budget_problem() -> BudgetProblem {
    let acc = LogitAcceptance::new(5.0, 0.0, 25.0);
    // Budget wide enough (width 2001 > 2 × 512 grain) that the budget
    // DPs genuinely fan out on the pool at the PR 4 grain.
    BudgetProblem::new(
        12,
        2000.0,
        ActionSet::from_grid(PriceGrid::new(1, 18), &acc),
        50.0,
    )
}

/// `(deadline action indices, exact-DP price counts, MDP prices)`.
type PolicyFingerprint = (Vec<u32>, Vec<(u32, u32)>, Vec<(u32, u32)>);

fn solve_everything_once() -> PolicyFingerprint {
    let dp = deadline_problem();
    let bp = budget_problem();
    let simple = solve_simple(&dp).unwrap();
    let truncated = solve_truncated(&dp, 1e-9).unwrap();
    let efficient = solve_efficient(&dp, 1e-9).unwrap();
    let exact = solve_budget_exact(&bp).unwrap();
    let mdp = solve_budget_mdp(&bp).unwrap();
    // Deterministic fingerprints of all five policies.
    let mut deadline_actions = Vec::new();
    for policy in [&simple, &truncated, &efficient] {
        for t in 0..dp.n_intervals() {
            for m in 1..=dp.n_tasks {
                deadline_actions.push(policy.action_index(m, t) as u32);
            }
        }
    }
    let exact_counts: Vec<(u32, u32)> = exact.counts().to_vec();
    let mdp_prices: Vec<(u32, u32)> = (1..=bp.n_tasks)
        .map(|m| (m, mdp.price(m, bp.budget as usize).unwrap()))
        .collect();
    (deadline_actions, exact_counts, mdp_prices)
}

#[test]
fn repeated_solves_reuse_pool_workers() {
    // Warm up: the first solve initialises the pool (lazy spawn).
    let reference = solve_everything_once();
    let before = thread_count();
    for round in 0..8 {
        let again = solve_everything_once();
        assert_eq!(
            reference, again,
            "pooled solve produced different policies on round {round}"
        );
    }
    if let (Some(before), Some(after)) = (before, thread_count()) {
        assert!(
            after <= before,
            "repeated solves grew the process thread count {before} -> {after}: \
             the kernel is spawning per layer instead of reusing parked pool workers"
        );
    }
}
