//! Smoke tests for the experiment registry: every id dispatches, cheap
//! experiments run end to end in fast mode, and reports are well-formed.

use finish_them::sim::{run_by_id, ExpConfig, ALL_IDS};

#[test]
fn every_id_dispatches() {
    for id in ALL_IDS {
        // Dispatch-only check via an unknown-id probe is covered below;
        // here we just assert the registry knows each id (without running
        // the heavy ones).
        assert!(
            [
                "fig1", "tab1", "fig5", "fig6", "fig7a", "fig7b", "fig8abc", "fig8d", "fig9",
                "fig10", "fig11", "fig12", "tab34", "fig15", "adaptive"
            ]
            .contains(id),
            "unexpected id {id}"
        );
    }
}

#[test]
fn unknown_id_is_none() {
    assert!(run_by_id("nope", ExpConfig::fast()).is_none());
}

#[test]
fn cheap_experiments_run_fast_mode() {
    // These complete in seconds even in debug builds.
    for id in ["fig1", "tab1", "fig6"] {
        let reports = run_by_id(id, ExpConfig::fast()).unwrap();
        assert!(!reports.is_empty(), "{id} produced no reports");
        for rep in &reports {
            for row in &rep.rows {
                assert_eq!(row.len(), rep.columns.len(), "{id}: ragged row");
            }
            // Rendering must not panic and must contain the id.
            assert!(rep.to_ascii().contains(&rep.id));
            let _ = rep.to_csv();
        }
    }
}

#[test]
fn tab1_reproduces_paper_exactly() {
    let reports = run_by_id("tab1", ExpConfig::fast()).unwrap();
    let tab = &reports[0];
    let expect = [(10.0, "35"), (20.0, "53"), (50.0, "99")];
    for (row, (lam, s0)) in tab.rows.iter().zip(expect) {
        assert_eq!(row[1].parse::<f64>().unwrap(), lam);
        assert_eq!(row[2], s0);
    }
}

#[test]
fn seeds_are_reproducible() {
    let a = run_by_id("fig1", ExpConfig::fast()).unwrap();
    let b = run_by_id("fig1", ExpConfig::fast()).unwrap();
    assert_eq!(a, b, "same seed must give identical reports");
    let c = run_by_id(
        "fig1",
        ExpConfig {
            fast: true,
            seed: 999,
        },
    )
    .unwrap();
    assert_ne!(a, c, "different seed must change the trace");
}
