//! Cross-crate integration tests for the marketplace substrate:
//! estimation round-trips (trace → rate, live trials → acceptance) and
//! NHPP consistency.

use finish_them::market::acceptance::fit_logit_acceptance;
use finish_them::market::nhpp::sample_interval_counts;
use finish_them::market::sim::{run_live_sim, FixedGroup, LiveSimConfig};
use finish_them::market::tracker::weekly_average_rate;
use finish_them::prelude::*;
use finish_them::stats::Summary;

#[test]
fn trace_to_rate_estimation_roundtrip() {
    // Generate a trace from a known rate, estimate the weekly profile,
    // and verify the estimate integrates to the truth within Poisson noise.
    let mut rng = seeded_rng(1);
    let cfg = TrackerConfig::default();
    let trace = TrackerTrace::generate(cfg.clone(), &mut rng);
    let estimated = weekly_average_rate(&trace);
    // Compare hour-by-hour over one week.
    let mut rel_errors = Summary::new();
    for h in 0..168 {
        let est = estimated.integral(h as f64, h as f64 + 1.0);
        let truth = {
            let mut acc = 0.0;
            let steps = 60;
            for k in 0..steps {
                acc += cfg.true_rate(h as f64 + (k as f64 + 0.5) / steps as f64) / steps as f64;
            }
            acc
        };
        rel_errors.push((est - truth).abs() / truth);
    }
    // 4 weeks of averaging at ~2000/bin: noise ≈ 1/√(4·2000) ≈ 1%.
    assert!(
        rel_errors.mean() < 0.03,
        "mean relative estimation error {}",
        rel_errors.mean()
    );
}

#[test]
fn nhpp_counts_match_trained_rate() {
    let mut rng = seeded_rng(2);
    let trace = TrackerTrace::generate(TrackerConfig::default(), &mut rng);
    let rate = weekly_average_rate(&trace);
    let means = rate.interval_means(24.0, 72);
    let mut totals = vec![0.0; 72];
    let reps = 300;
    for _ in 0..reps {
        for (t, c) in totals
            .iter_mut()
            .zip(sample_interval_counts(&rate, 24.0, 72, &mut rng))
        {
            *t += c as f64;
        }
    }
    for (t, m) in totals.iter().zip(&means) {
        let mean = t / reps as f64;
        let tol = 5.0 * (m / reps as f64).sqrt() + 1e-9;
        assert!(
            (mean - m).abs() < tol,
            "sampled interval mean {mean} vs λ_t {m}"
        );
    }
}

#[test]
fn acceptance_estimation_roundtrip() {
    // Fit Eq. 3 from noisy empirical (price, frequency) samples generated
    // by the true model, then verify predictions track the truth.
    let truth = LogitAcceptance::paper_eq13();
    let mut rng = seeded_rng(3);
    let mut samples = Vec::new();
    let mut weights = Vec::new();
    for c in (4..=40).step_by(4) {
        let trials = 40_000u32;
        let p = truth.p(c);
        let hits = (0..trials)
            .filter(|_| rand::Rng::gen::<f64>(&mut rng) < p)
            .count();
        samples.push((c, hits as f64 / trials as f64));
        weights.push(trials as f64);
    }
    let fit = fit_logit_acceptance(&samples, Some(&weights), 2000.0).unwrap();
    for c in [8u32, 12, 16, 25, 35] {
        let rel = (fit.p(c) - truth.p(c)).abs() / truth.p(c);
        assert!(rel < 0.2, "p({c}) relative error {rel}");
    }
}

#[test]
fn live_sim_cost_accounting_is_exact() {
    let config = LiveSimConfig {
        total_tasks: 400,
        ..Default::default()
    };
    let arrival = ConstantRate::new(1500.0);
    let mut rng = seeded_rng(4);
    let out = run_live_sim(&config, &arrival, 1500.0, &mut FixedGroup(10), &mut rng);
    // Every completed HIT costs exactly the HIT price; tasks tally up.
    assert_eq!(out.cost_cents, out.completions.len() as u64 * 2);
    let total: u32 = out.completions.iter().map(|c| c.tasks).sum();
    assert_eq!(total, out.tasks_completed);
    // Session records cover exactly the completed HITs.
    let session_hits: u32 = out.sessions.iter().map(|s| s.hits).sum();
    assert_eq!(session_hits as usize, out.completions.len());
}

#[test]
fn table_acceptance_from_live_estimates_is_usable() {
    // The Section 5.4.2 flow: estimates from trials → TableAcceptance →
    // price_for queries.
    let table = TableAcceptance::new(vec![(4, 0.0008), (10, 0.003), (20, 0.006)]);
    assert!(table.p(7) > table.p(4));
    let c = table.price_for(0.004, 0, 20).unwrap();
    assert!(table.p(c) >= 0.004);
    assert!(c > 10 && c <= 20);
}
