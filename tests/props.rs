//! Property-based tests (proptest) on the core invariants:
//! distribution laws, convex-hull geometry, DP monotonicity
//! (Conjecture 1), solver agreement, and Theorem 5/7 structure.

use finish_them::core::budget::SemiStaticStrategy;
use finish_them::prelude::*;
use finish_them::stats::convex::{above_or_on_hull, lower_hull, Point};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn poisson_cdf_sf_complement(lambda in 0.01f64..500.0, k in 0u64..200) {
        let d = Poisson::new(lambda);
        let total = d.cdf(k) + d.sf(k + 1);
        prop_assert!((total - 1.0).abs() < 1e-8, "cdf+sf = {total}");
    }

    #[test]
    fn poisson_truncation_point_is_valid(lambda in 0.01f64..300.0, exp in 2u32..10) {
        let eps = 10f64.powi(-(exp as i32));
        let d = Poisson::new(lambda);
        let s0 = d.truncation_point(eps);
        prop_assert!(d.sf(s0) <= eps);
        prop_assert!(s0 == 0 || d.sf(s0 - 1) > eps);
    }

    #[test]
    fn hull_points_lie_below_input(xs in proptest::collection::vec((0.0f64..100.0, 0.1f64..50.0), 3..40)) {
        let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let hull = lower_hull(&pts);
        prop_assert!(!hull.is_empty());
        for &p in &pts {
            prop_assert!(above_or_on_hull(&hull, p), "point below hull: {p:?}");
        }
        // Hull x-coordinates strictly increase.
        for w in hull.windows(2) {
            prop_assert!(w[1].x > w[0].x);
        }
    }

    #[test]
    fn theorem5_order_invariance(prices in proptest::collection::vec(1u32..50, 1..20)) {
        let acc = LogitAcceptance::paper_eq13();
        let a = SemiStaticStrategy::new(prices.clone());
        let mut sorted = prices;
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        let b = SemiStaticStrategy::new(sorted);
        let wa = a.expected_arrivals(|c| acc.p(c));
        let wb = b.expected_arrivals(|c| acc.p(c));
        prop_assert!((wa - wb).abs() < 1e-9 * wa.max(1.0));
    }

    #[test]
    fn logit_acceptance_monotone(
        s in 2.0f64..40.0,
        b in -2.0f64..2.0,
        m in 10.0f64..5000.0,
        c in 0u32..100,
    ) {
        let acc = LogitAcceptance::new(s, b, m);
        let p0 = acc.p(c);
        let p1 = acc.p(c + 1);
        prop_assert!(p1 >= p0);
        prop_assert!((0.0..=1.0).contains(&p0));
    }

    #[test]
    fn piecewise_rate_integral_additive(
        rates in proptest::collection::vec(0.0f64..100.0, 1..24),
        split in 0.0f64..1.0,
        periodic in proptest::bool::ANY,
    ) {
        let r = PiecewiseConstantRate::new(0.5, rates, periodic);
        let end = if periodic { 3.0 * r.period_hours() } else { r.period_hours() };
        let mid = split * end;
        let whole = r.integral(0.0, end);
        let parts = r.integral(0.0, mid) + r.integral(mid, end);
        prop_assert!((whole - parts).abs() < 1e-7 * whole.max(1.0));
    }

    #[test]
    fn deadline_policy_monotone_and_solvers_agree(
        n_tasks in 2u32..12,
        nt in 1usize..5,
        lam in 1.0f64..60.0,
        penalty in 10.0f64..2000.0,
        max_price in 4u32..20,
    ) {
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        let problem = DeadlineProblem::from_market(
            n_tasks, nt as f64, nt,
            &ConstantRate::new(lam),
            PriceGrid::new(0, max_price),
            &acc,
            PenaltyModel::Linear { per_task: penalty },
        );
        let simple = solve_simple(&problem).unwrap();
        let efficient = solve_efficient(&problem, 1e-11).unwrap();
        for t in 0..nt {
            // Conjecture 1: monotone prices in n.
            for n in 2..=n_tasks {
                prop_assert!(
                    simple.action_index(n, t) >= simple.action_index(n - 1, t)
                );
            }
            // Solver agreement at tight eps.
            for n in 1..=n_tasks {
                prop_assert_eq!(
                    simple.action_index(n, t),
                    efficient.action_index(n, t),
                    "mismatch at (n={}, t={})", n, t
                );
            }
        }
        // Cost-to-go monotone in n, and evaluation consistent.
        for n in 1..=n_tasks {
            prop_assert!(simple.cost_to_go(n, 0) >= simple.cost_to_go(n - 1, 0) - 1e-9);
        }
        let out = simple.evaluate(&problem);
        prop_assert!((out.expected_total_cost() - simple.expected_total_cost()).abs() < 1e-6);
        let mass: f64 = out.final_distribution.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_hull_two_prices_and_feasible(
        n_tasks in 2u32..40,
        budget_per in 2.0f64..30.0,
    ) {
        let acc = LogitAcceptance::new(6.0, -0.5, 100.0);
        let problem = BudgetProblem::new(
            n_tasks,
            budget_per * n_tasks as f64,
            ActionSet::from_grid(PriceGrid::new(1, 35), &acc),
            100.0,
        );
        match solve_budget_hull(&problem) {
            Ok(sol) => {
                prop_assert!(sol.strategy.counts().len() <= 2);
                prop_assert!(sol.strategy.within_budget(problem.budget));
                prop_assert_eq!(sol.strategy.n_tasks(), n_tasks);
                prop_assert!(sol.expected_arrivals >= sol.lp_lower_bound - 1e-9);
                prop_assert!(
                    sol.expected_arrivals
                        <= sol.lp_lower_bound + sol.rounding_gap_bound + 1e-9
                );
            }
            Err(PricingError::Infeasible(_)) => {
                // Only possible when the budget can't cover the min price.
                prop_assert!(budget_per < 1.0 + 1e-9);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn fixed_price_binary_search_minimal(
        n_tasks in 1u32..50,
        arrivals in 100.0f64..20000.0,
    ) {
        let acc = LogitAcceptance::new(6.0, -0.5, 100.0);
        let actions = ActionSet::from_grid(PriceGrid::new(0, 35), &acc);
        match solve_fixed_price(&actions, arrivals, n_tasks, 0.99) {
            Ok(sol) => {
                // Minimality: one cent less fails the confidence.
                if let Some(idx) = actions.index_of_reward(sol.reward) {
                    if idx > 0 {
                        let below = actions.get(idx - 1);
                        let conf = Poisson::new(arrivals * below.accept).sf(n_tasks as u64);
                        prop_assert!(conf < 0.99);
                    }
                }
                prop_assert!(sol.prob_all_done >= 0.99);
            }
            Err(PricingError::Infeasible(_)) => {
                let best = actions.get(actions.len() - 1);
                let conf = Poisson::new(arrivals * best.accept).sf(n_tasks as u64);
                prop_assert!(conf < 0.99);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
