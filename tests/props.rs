//! Property-based tests (proptest) on the core invariants:
//! distribution laws, convex-hull geometry, DP monotonicity
//! (Conjecture 1), solver agreement, and Theorem 5/7 structure.

use finish_them::core::budget::SemiStaticStrategy;
use finish_them::core::dp::{solve_efficient_with, TruncationTable};
use finish_them::core::testkit::{varied_budget_problems, varied_problems};
use finish_them::core::{solve_budget_mdp, KernelConfig};
use finish_them::prelude::*;
use finish_them::stats::convex::{above_or_on_hull, lower_hull, Point};
use proptest::prelude::*;

/// Cross-solver agreement on the `varied_problems()` family, all routed
/// through the shared kernel: the three deadline solvers must produce
/// identical policies state by state (simple vs truncated at tight ε vs
/// efficient), and the kernel must be invariant to its thread count.
#[test]
fn deadline_solvers_agree_on_varied_problems() {
    for (pi, p) in varied_problems().iter().enumerate() {
        let simple = solve_simple(p).unwrap();
        let trunc = solve_truncated(p, 1e-12).unwrap();
        let efficient_exact = {
            let table = TruncationTable::none(p);
            solve_efficient_with(p, &table).unwrap()
        };
        let efficient = solve_efficient(p, 1e-12).unwrap();
        for t in 0..p.n_intervals() {
            for n in 1..=p.n_tasks {
                let a = simple.action_index(n, t);
                assert_eq!(
                    a,
                    efficient_exact.action_index(n, t),
                    "problem {pi}: simple vs efficient(no-trunc) at (n={n}, t={t})"
                );
                assert_eq!(
                    trunc.action_index(n, t),
                    efficient.action_index(n, t),
                    "problem {pi}: truncated vs efficient at (n={n}, t={t}), eps=1e-12"
                );
            }
        }
        // Tight truncation also agrees with the exact solver on cost.
        let gap = (simple.expected_total_cost() - trunc.expected_total_cost()).abs();
        assert!(
            gap < 1e-6,
            "problem {pi}: exact vs 1e-12-truncated cost gap {gap}"
        );
    }
}

/// The kernel's parallel sweep must be *bitwise* identical to a serial
/// sweep on every varied problem — chunking is a scheduling decision,
/// never a numerical one.
#[test]
fn kernel_thread_count_is_invisible() {
    use finish_them::core::kernel::deadline::solve_deadline;
    use finish_them::core::kernel::Sweep;
    for p in varied_problems() {
        let table = TruncationTable::with_eps(&p, 1e-9);
        let serial = solve_deadline(&p, &table, Sweep::Dense, &KernelConfig::serial()).unwrap();
        let parallel = solve_deadline(
            &p,
            &table,
            Sweep::Dense,
            &KernelConfig {
                threads: 0,
                grain: 1,
            },
        )
        .unwrap();
        for t in 0..=p.n_intervals() {
            for n in 0..=p.n_tasks {
                assert_eq!(
                    serial.cost_to_go(n, t).to_bits(),
                    parallel.cost_to_go(n, t).to_bits(),
                    "cost differs at (n={n}, t={t})"
                );
            }
        }
    }
}

/// Budget solvers checked against each other on the varied budget
/// family: the Theorem 6 exact DP, the Theorem 4 worker-arrival MDP and
/// the Algorithm 3 hull solution must line up exactly as the paper's
/// optimality chain predicts.
#[test]
fn budget_solvers_agree_on_varied_problems() {
    for (pi, p) in varied_budget_problems().iter().enumerate() {
        let exact = solve_budget_exact(p).unwrap();
        let hull = solve_budget_hull(p).unwrap();
        let mdp = solve_budget_mdp(p).unwrap();
        let acc = |c: u32| {
            let i = p.actions.index_of_reward(c as f64).unwrap();
            p.actions.get(i).accept
        };
        let e = exact.expected_arrivals(acc);
        let h = hull.expected_arrivals;
        // Theorems 3–5: dynamic optimum = static optimum.
        assert!(
            (mdp.expected_arrivals() - e).abs() < 1e-9,
            "problem {pi}: MDP {} vs exact {e}",
            mdp.expected_arrivals()
        );
        // Exact ≤ hull ≤ exact + Theorem 8 gap.
        assert!(e <= h + 1e-9, "problem {pi}: exact {e} worse than hull {h}");
        assert!(
            h <= e + hull.rounding_gap_bound + 1e-9,
            "problem {pi}: hull {h} exceeds exact {e} + gap {}",
            hull.rounding_gap_bound
        );
        // Both strategies honour the constraints.
        assert_eq!(exact.n_tasks(), p.n_tasks);
        assert!(exact.within_budget(p.budget));
        assert!(hull.strategy.within_budget(p.budget));
    }
}

/// The pricing service must serve exactly the prices the standalone
/// solvers would compute, for a heterogeneous batch.
#[test]
fn service_matches_standalone_solvers() {
    use finish_them::core::{CampaignSpec, ObservedState, PricingService};
    let service = PricingService::new();
    let mut batch: Vec<(u64, CampaignSpec)> = varied_problems()
        .into_iter()
        .enumerate()
        .map(|(i, problem)| {
            (
                i as u64,
                CampaignSpec::Deadline {
                    problem,
                    eps: Some(1e-9),
                },
            )
        })
        .collect();
    for (j, problem) in varied_budget_problems().into_iter().enumerate() {
        batch.push((1000 + j as u64, CampaignSpec::Budget { problem }));
    }
    for (id, result) in service.solve_batch(batch) {
        result.unwrap_or_else(|e| panic!("campaign {id} failed: {e}"));
    }
    for (i, problem) in varied_problems().into_iter().enumerate() {
        let direct = solve_efficient(&problem, 1e-9).unwrap();
        for t in 0..problem.n_intervals() {
            for n in 1..=problem.n_tasks {
                let got = service
                    .reprice(
                        i as u64,
                        ObservedState::Deadline {
                            remaining: n,
                            interval: t,
                        },
                    )
                    .unwrap();
                assert_eq!(got, direct.price(n, t), "campaign {i} at (n={n}, t={t})");
            }
        }
    }
    for (j, problem) in varied_budget_problems().into_iter().enumerate() {
        let direct = solve_budget_mdp(&problem).unwrap();
        let b = problem.budget.floor() as usize;
        let got = service
            .reprice(
                1000 + j as u64,
                ObservedState::Budget {
                    remaining: problem.n_tasks,
                    budget_cents: b,
                },
            )
            .unwrap();
        assert_eq!(got, f64::from(direct.price(problem.n_tasks, b).unwrap()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn poisson_cdf_sf_complement(lambda in 0.01f64..500.0, k in 0u64..200) {
        let d = Poisson::new(lambda);
        let total = d.cdf(k) + d.sf(k + 1);
        prop_assert!((total - 1.0).abs() < 1e-8, "cdf+sf = {total}");
    }

    #[test]
    fn poisson_truncation_point_is_valid(lambda in 0.01f64..300.0, exp in 2u32..10) {
        let eps = 10f64.powi(-(exp as i32));
        let d = Poisson::new(lambda);
        let s0 = d.truncation_point(eps);
        prop_assert!(d.sf(s0) <= eps);
        prop_assert!(s0 == 0 || d.sf(s0 - 1) > eps);
    }

    #[test]
    fn hull_points_lie_below_input(xs in proptest::collection::vec((0.0f64..100.0, 0.1f64..50.0), 3..40)) {
        let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let hull = lower_hull(&pts);
        prop_assert!(!hull.is_empty());
        for &p in &pts {
            prop_assert!(above_or_on_hull(&hull, p), "point below hull: {p:?}");
        }
        // Hull x-coordinates strictly increase.
        for w in hull.windows(2) {
            prop_assert!(w[1].x > w[0].x);
        }
    }

    #[test]
    fn theorem5_order_invariance(prices in proptest::collection::vec(1u32..50, 1..20)) {
        let acc = LogitAcceptance::paper_eq13();
        let a = SemiStaticStrategy::new(prices.clone());
        let mut sorted = prices;
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        let b = SemiStaticStrategy::new(sorted);
        let wa = a.expected_arrivals(|c| acc.p(c));
        let wb = b.expected_arrivals(|c| acc.p(c));
        prop_assert!((wa - wb).abs() < 1e-9 * wa.max(1.0));
    }

    #[test]
    fn logit_acceptance_monotone(
        s in 2.0f64..40.0,
        b in -2.0f64..2.0,
        m in 10.0f64..5000.0,
        c in 0u32..100,
    ) {
        let acc = LogitAcceptance::new(s, b, m);
        let p0 = acc.p(c);
        let p1 = acc.p(c + 1);
        prop_assert!(p1 >= p0);
        prop_assert!((0.0..=1.0).contains(&p0));
    }

    #[test]
    fn piecewise_rate_integral_additive(
        rates in proptest::collection::vec(0.0f64..100.0, 1..24),
        split in 0.0f64..1.0,
        periodic in proptest::bool::ANY,
    ) {
        let r = PiecewiseConstantRate::new(0.5, rates, periodic);
        let end = if periodic { 3.0 * r.period_hours() } else { r.period_hours() };
        let mid = split * end;
        let whole = r.integral(0.0, end);
        let parts = r.integral(0.0, mid) + r.integral(mid, end);
        prop_assert!((whole - parts).abs() < 1e-7 * whole.max(1.0));
    }

    #[test]
    fn deadline_policy_monotone_and_solvers_agree(
        n_tasks in 2u32..12,
        nt in 1usize..5,
        lam in 1.0f64..60.0,
        penalty in 10.0f64..2000.0,
        max_price in 4u32..20,
    ) {
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        let problem = DeadlineProblem::from_market(
            n_tasks, nt as f64, nt,
            &ConstantRate::new(lam),
            PriceGrid::new(0, max_price),
            &acc,
            PenaltyModel::Linear { per_task: penalty },
        );
        let simple = solve_simple(&problem).unwrap();
        let efficient = solve_efficient(&problem, 1e-11).unwrap();
        for t in 0..nt {
            // Conjecture 1: monotone prices in n.
            for n in 2..=n_tasks {
                prop_assert!(
                    simple.action_index(n, t) >= simple.action_index(n - 1, t)
                );
            }
            // Solver agreement at tight eps.
            for n in 1..=n_tasks {
                prop_assert_eq!(
                    simple.action_index(n, t),
                    efficient.action_index(n, t),
                    "mismatch at (n={}, t={})", n, t
                );
            }
        }
        // Cost-to-go monotone in n, and evaluation consistent.
        for n in 1..=n_tasks {
            prop_assert!(simple.cost_to_go(n, 0) >= simple.cost_to_go(n - 1, 0) - 1e-9);
        }
        let out = simple.evaluate(&problem);
        prop_assert!((out.expected_total_cost() - simple.expected_total_cost()).abs() < 1e-6);
        let mass: f64 = out.final_distribution.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_hull_two_prices_and_feasible(
        n_tasks in 2u32..40,
        budget_per in 2.0f64..30.0,
    ) {
        let acc = LogitAcceptance::new(6.0, -0.5, 100.0);
        let problem = BudgetProblem::new(
            n_tasks,
            budget_per * n_tasks as f64,
            ActionSet::from_grid(PriceGrid::new(1, 35), &acc),
            100.0,
        );
        match solve_budget_hull(&problem) {
            Ok(sol) => {
                prop_assert!(sol.strategy.counts().len() <= 2);
                prop_assert!(sol.strategy.within_budget(problem.budget));
                prop_assert_eq!(sol.strategy.n_tasks(), n_tasks);
                prop_assert!(sol.expected_arrivals >= sol.lp_lower_bound - 1e-9);
                prop_assert!(
                    sol.expected_arrivals
                        <= sol.lp_lower_bound + sol.rounding_gap_bound + 1e-9
                );
            }
            Err(PricingError::Infeasible(_)) => {
                // Only possible when the budget can't cover the min price.
                prop_assert!(budget_per < 1.0 + 1e-9);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn fixed_price_binary_search_minimal(
        n_tasks in 1u32..50,
        arrivals in 100.0f64..20000.0,
    ) {
        let acc = LogitAcceptance::new(6.0, -0.5, 100.0);
        let actions = ActionSet::from_grid(PriceGrid::new(0, 35), &acc);
        match solve_fixed_price(&actions, arrivals, n_tasks, 0.99) {
            Ok(sol) => {
                // Minimality: one cent less fails the confidence.
                if let Some(idx) = actions.index_of_reward(sol.reward) {
                    if idx > 0 {
                        let below = actions.get(idx - 1);
                        let conf = Poisson::new(arrivals * below.accept).sf(n_tasks as u64);
                        prop_assert!(conf < 0.99);
                    }
                }
                prop_assert!(sol.prob_all_done >= 0.99);
            }
            Err(PricingError::Infeasible(_)) => {
                let best = actions.get(actions.len() - 1);
                let conf = Poisson::new(arrivals * best.accept).sf(n_tasks as u64);
                prop_assert!(conf < 0.99);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
